// Traffic-adaptive materialization under a memory budget (src/adaptive/).
//
// Three servers over the same event trace and simulated-disk store answer an
// identical Zipf-skewed snapshot workload (a few hot timepoints carry nearly
// all traffic — the paper's "heavy traffic" deployments are never uniform):
//
//   nomat     no materialization at all: every query pays the delta chain.
//   fullmat   every leaf materialized: the latency floor, at maximum memory.
//   adaptive  MaterializationAdvisor under a budget of 1/4 of fullmat's
//             resident bytes, warmed by the same workload: advisor ticks run
//             via HistGraphServer::RunAdvisorOnce until the policy converges
//             (two consecutive no-op ticks).
//
// The claim under test (CI-asserted from BENCH_adaptive_mat.json): after
// convergence the adaptive server's p95 is within 1.5x of fullmat's p95
// (adaptive_latency_ratio_milli <= 1500) while holding at most 1/4 of
// fullmat's resident bytes (adaptive_resident_ratio_milli <= 250) — the hot
// quarter of the traffic buys nearly all of full materialization's win.
//
// Env knobs: HISTGRAPH_ADMAT_OPS (measured queries per config, default 240),
// HISTGRAPH_SCALE (index size), plus the bench-common store knobs.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <vector>

#include "bench/bench_common.h"
#include "server/hist_graph_server.h"
#include "workload/generators.h"

namespace hgdb {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

// Zipf-skewed rank pick (rank 0 hottest). Exponent 3.0 over 32 ranks puts
// ~98% of the mass on the top 4 and ~99.4% on the top 8, so a quarter-sized
// budget can cover well past the p95 mass.
class ZipfPicker {
 public:
  explicit ZipfPicker(int buckets, double s) : cdf_(buckets) {
    double total = 0;
    for (int i = 0; i < buckets; ++i) {
      total += 1.0 / std::pow(i + 1, s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  int Pick(std::mt19937_64& rng) const {
    const double u = std::uniform_real_distribution<double>(0, 1)(rng);
    return static_cast<int>(std::lower_bound(cdf_.begin(), cdf_.end(), u) -
                            cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

constexpr int kTimepoints = 32;
constexpr double kZipfExponent = 3.0;

// Fixed timepoint set over the trace span, with ranks mapped through a fixed
// permutation so the hot set is scattered across history (not just "the
// newest leaves", which the maintained current graph already serves well).
struct Workload {
  std::vector<Timestamp> by_rank;  ///< by_rank[r] = timepoint of Zipf rank r.
};

Workload MakeWorkload(Timestamp lo, Timestamp hi) {
  Workload w;
  w.by_rank.resize(kTimepoints);
  const double span = static_cast<double>(hi - lo);
  for (int r = 0; r < kTimepoints; ++r) {
    const int slot = (r * 7 + 3) % kTimepoints;  // 7 coprime with 32.
    w.by_rank[r] =
        lo + static_cast<Timestamp>(span * (slot + 0.5) / kTimepoints);
  }
  return w;
}

struct Measured {
  double p50_us = 0, p95_us = 0;
  uint64_t errors = 0;
};

// Closed-loop: `ops` single-point retrievals with per-query wall timing. The
// same seed across configs means the three servers answer the exact same
// query sequence.
Measured RunQueries(HistGraphServer* server, const Workload& w, int ops,
                    uint64_t seed) {
  std::mt19937_64 rng(seed);
  const ZipfPicker zipf(kTimepoints, kZipfExponent);
  std::vector<double> lat_us;
  lat_us.reserve(ops);
  Measured m;
  for (int i = 0; i < ops; ++i) {
    const Timestamp t = w.by_rank[zipf.Pick(rng)];
    const auto start = Clock::now();
    auto r = server->GetSnapshot(t, kCompAll);
    if (!r.ok()) {
      ++m.errors;
      continue;
    }
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count());
  }
  if (lat_us.empty()) return m;
  std::sort(lat_us.begin(), lat_us.end());
  auto at = [&](double q) {
    const size_t idx = std::min(
        lat_us.size() - 1,
        static_cast<size_t>(std::ceil(q * lat_us.size())) - 1);
    return lat_us[idx];
  };
  m.p50_us = at(0.50);
  m.p95_us = at(0.95);
  return m;
}

std::unique_ptr<HistGraphServer> MakeServer(KVStore* store,
                                            const std::vector<Event>& events,
                                            uint64_t budget_bytes) {
  HistGraphServerOptions options;
  options.manager.materialization_budget_bytes = budget_bytes;
  options.advisor_tick_us = 0;  // Deterministic: ticks only via RunAdvisorOnce.
  options.advisor.max_materialize_per_tick = 8;
  auto server_or = HistGraphServer::Create(store, options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "server create failed: %s\n",
                 server_or.status().ToString().c_str());
    return nullptr;
  }
  auto server = std::move(server_or).value();
  for (size_t i = 0; i < events.size(); i += 2048) {
    const size_t n = std::min<size_t>(2048, events.size() - i);
    std::vector<Event> batch(events.begin() + i, events.begin() + i + n);
    if (!server->Append(std::move(batch)).ok()) return nullptr;
  }
  if (!server->Finalize().ok()) return nullptr;
  if (!server->Flush().ok()) return nullptr;
  return server;
}

}  // namespace

int Main() {
  PrintHeader("bench_adaptive_mat: budgeted adaptive vs no/full materialization");
  OpenReport("adaptive_mat");

  const int ops = static_cast<int>(GetEnvInt("HISTGRAPH_ADMAT_OPS", 240));
  GeneratedTrace trace = GenerateRandomTrace(RandomTraceOptions{
      .num_events = static_cast<size_t>(40000 * WorkloadScale()),
      .seed = 20130113,
  });
  const Workload workload =
      MakeWorkload(trace.events.front().time, trace.events.back().time);

  // -- nomat: the delta-chain baseline -----------------------------------------
  auto nomat_store = NewSimDiskStore();
  auto nomat = MakeServer(nomat_store.get(), trace.events, 0);
  if (!nomat) return 1;
  (void)RunQueries(nomat.get(), workload, ops / 4, 1);  // Warm decoded cache.
  const Measured base = RunQueries(nomat.get(), workload, ops, 42);
  std::printf("nomat:    p50 %8.0fus  p95 %8.0fus\n", base.p50_us, base.p95_us);

  // -- fullmat: the latency floor and the memory ceiling -----------------------
  auto full_store = NewSimDiskStore();
  auto full = MakeServer(full_store.get(), trace.events, 0);
  if (!full) return 1;
  {
    const Status s = full->manager().index().MaterializeAllLeaves(kCompAll);
    if (!s.ok()) {
      std::fprintf(stderr, "MaterializeAllLeaves: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const DeltaGraphStats full_stats = full->manager().index().Stats();
  const uint64_t full_bytes = full_stats.materialized_bytes;
  (void)RunQueries(full.get(), workload, ops / 4, 1);
  const Measured floor = RunQueries(full.get(), workload, ops, 42);
  std::printf("fullmat:  p50 %8.0fus  p95 %8.0fus  (%zu nodes, %s resident)\n",
              floor.p50_us, floor.p95_us, full_stats.materialized_nodes,
              FormatBytes(full_bytes).c_str());

  // -- adaptive: 1/4 of fullmat's bytes, policy warmed by live traffic ---------
  const uint64_t budget = full_bytes / 4;
  auto adaptive_store = NewSimDiskStore();
  auto adaptive = MakeServer(adaptive_store.get(), trace.events, budget);
  if (!adaptive) return 1;
  if (adaptive->advisor() == nullptr) {
    std::fprintf(stderr, "advisor did not come up (budget %llu)\n",
                 static_cast<unsigned long long>(budget));
    return 1;
  }
  int rounds = 0, quiet = 0;
  for (; rounds < 16 && quiet < 2; ++rounds) {
    (void)RunQueries(adaptive.get(), workload, std::max(60, ops / 4),
                     1000 + rounds);
    auto tick = adaptive->RunAdvisorOnce();
    if (!tick.ok()) {
      std::fprintf(stderr, "advisor tick: %s\n", tick.status().ToString().c_str());
      return 1;
    }
    quiet = (tick->materialized == 0 && tick->evicted == 0) ? quiet + 1 : 0;
    std::printf("  warm round %2d: +%zu mat, -%zu evict, %zu resident (%s)\n",
                rounds, tick->materialized, tick->evicted, tick->resident_nodes,
                FormatBytes(tick->resident_bytes).c_str());
  }
  const Measured adapt = RunQueries(adaptive.get(), workload, ops, 42);
  const uint64_t resident = adaptive->advisor()->resident_bytes();
  std::printf("adaptive: p50 %8.0fus  p95 %8.0fus  (%s resident / %s budget, "
              "%d warm rounds)\n",
              adapt.p50_us, adapt.p95_us, FormatBytes(resident).c_str(),
              FormatBytes(budget).c_str(), rounds);

  const double latency_ratio =
      floor.p95_us > 0 ? adapt.p95_us / floor.p95_us : 0.0;
  const double resident_ratio =
      full_bytes > 0 ? static_cast<double>(resident) / full_bytes : 0.0;
  std::printf("adaptive p95 = %.2fx fullmat p95 at %.1f%% of fullmat bytes "
              "(gates: <= 1.50x, <= 25%%)\n",
              latency_ratio, resident_ratio * 100.0);

  // Machine-readable rows (*_us rows carry microseconds * 1000 = ns in the
  // wall_ns column; *_milli rows carry ratio * 1000; byte rows use the bytes
  // column). The CI smoke step asserts presence AND the two gate rows.
  ReportResult("nomat_p95_us", base.p95_us * 1000);
  ReportResult("fullmat_p95_us", floor.p95_us * 1000);
  ReportResult("adaptive_p95_us", adapt.p95_us * 1000);
  ReportResult("fullmat_resident_bytes", 0, full_bytes);
  ReportResult("adaptive_resident_bytes", 0, resident);
  ReportResult("adaptive_budget_bytes", 0, budget);
  ReportResult("adaptive_latency_ratio_milli", latency_ratio * 1000);
  ReportResult("adaptive_resident_ratio_milli", resident_ratio * 1000);
  ReportResult("adaptive_ticks", static_cast<double>(adaptive->advisor()->ticks()));
  ReportResult("adaptive_materialized_total",
               static_cast<double>(adaptive->advisor()->total_materialized()));
  ReportResult("adaptive_evicted_total",
               static_cast<double>(adaptive->advisor()->total_evicted()));

  const bool gates_ok = latency_ratio <= 1.5 && resident_ratio <= 0.25;
  const bool errors_ok = base.errors == 0 && floor.errors == 0 && adapt.errors == 0;
  if (!gates_ok) std::fprintf(stderr, "FAIL: convergence gates missed\n");
  return gates_ok && errors_ok ? 0 : 1;
}

}  // namespace bench
}  // namespace hgdb

int main() { return hgdb::bench::Main(); }
