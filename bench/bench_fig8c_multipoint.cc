// Figure 8(c): multipoint retrieval vs repeated singlepoint retrieval.
//
// The paper retrieves 2..6 snapshots spaced one month apart from Dataset 1;
// the Steiner-planned multipoint query fetches shared deltas once and wins
// decisively because adjacent snapshots overlap heavily. On top of the
// paper's comparison we time the multipoint plan under both executors: the
// serial backtracking visitor and the parallel subtree executor
// (HISTGRAPH_THREADS workers, default 4), which the acceptance gate of the
// exec subsystem tracks at k >= 8.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "exec/io_pool.h"
#include "exec/task_pool.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 8(c): multipoint query vs repeated singlepoint queries");
  OpenReport("fig8c_multipoint");
  Dataset data = MakeDataset1();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());

  auto store = NewSimDiskStore();
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto dg = BuildIndex(store.get(), data, opts);

  // HISTGRAPH_THREADS is honored exactly; at 1 the "parallel" columns fall
  // back to the serial executor (the gate in ExecuteSnapshotPlan), so a
  // thread-scaling sweep over the env knob stays truthful.
  const int threads = static_cast<int>(GetEnvInt("HISTGRAPH_THREADS", 4));
  TaskPool pool(threads);
  std::printf("parallel executor: %d thread(s)%s\n\n", pool.parallelism(),
              pool.parallelism() < 2 ? " (serial path)" : "");

  // Time points one "month" (30 days) apart in the middle of the history.
  const Timestamp base = data.min_time + (data.max_time - data.min_time) / 2;
  PrintRow({"# queries", "singlepoints", "multi serial", "multi parallel", "par speedup"},
           16);
  for (int k : {2, 4, 6, 8, 12}) {
    std::vector<Timestamp> times;
    for (int i = 0; i < k; ++i) times.push_back(base + i * 30);

    dg->SetTaskPool(nullptr);  // Serial baseline paths.
    Stopwatch sw;
    for (Timestamp t : times) {
      auto snap = dg->GetSnapshot(t, kCompAll);
      if (!snap.ok()) std::abort();
    }
    const double single_ms = sw.ElapsedMillis();

    // One untimed run to settle the decoded-object LRU so the two timed
    // executors see the same cache state.
    if (!dg->GetSnapshots(times, kCompAll).ok()) std::abort();

    sw.Restart();
    auto serial_snaps = dg->GetSnapshots(times, kCompAll);
    if (!serial_snaps.ok()) std::abort();
    const double multi_serial_ms = sw.ElapsedMillis();

    dg->SetTaskPool(&pool);
    sw.Restart();
    auto par_snaps = dg->GetSnapshots(times, kCompAll);
    if (!par_snaps.ok()) std::abort();
    const double multi_par_ms = sw.ElapsedMillis();
    for (size_t i = 0; i < times.size(); ++i) {  // Executors must agree.
      if (!par_snaps.value()[i].Equals(serial_snaps.value()[i])) std::abort();
    }

    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", multi_serial_ms / multi_par_ms);
    PrintRow({std::to_string(k), FormatMs(single_ms), FormatMs(multi_serial_ms),
              FormatMs(multi_par_ms), speedup},
             16);
    ReportResult("singlepoints_k" + std::to_string(k), single_ms * 1e6);
    ReportResult("multipoint_k" + std::to_string(k), multi_serial_ms * 1e6);
    ReportResult("multipoint_parallel_k" + std::to_string(k), multi_par_ms * 1e6);
  }
  // --- Observability overhead (sampled gate < 2%, full-on gate < 3.5%) ------
  // The k=8 serial multipoint query with metrics + trace spans fully off vs
  // fully on (trace dumping stays off; HISTGRAPH_TRACE gates that
  // separately). Warm LRU, per-triple paired comparison, so the
  // percent-level comparison is not drowned by simulated-disk jitter.
  {
    dg->SetTaskPool(nullptr);
    std::vector<Timestamp> times;
    for (int i = 0; i < 8; ++i) times.push_back(base + i * 30);
    if (!dg->GetSnapshots(times, kCompAll).ok()) std::abort();  // Warm the LRU.
    // Off; metrics + full tracing on; and the production configuration —
    // metrics on, full tracing off, sampled tracing (1-in-64 + tail arming)
    // feeding the flight recorder, which is what HistGraphServer runs
    // always-on.
    enum { kOff = 0, kOn = 1, kSampled = 2 };
    constexpr int kTriples = 151;
    double triple_ms[3];
    double best[3] = {1e30, 1e30, 1e30};
    std::vector<double> ratio_on, ratio_sampled;
    auto run_config = [&](int cfg) {
      obs::SetMetricsEnabled(cfg != kOff);
      obs::SetTraceEnabled(cfg == kOn);
      if (cfg == kSampled) {
        obs::TraceSampler::Global().Configure(64, 1000000, 4);
      }
      Stopwatch sw;
      if (!dg->GetSnapshots(times, kCompAll).ok()) std::abort();
      triple_ms[cfg] = sw.ElapsedMillis();
      if (cfg == kSampled) obs::TraceSampler::Global().Configure(0, 0, 0);
      best[cfg] = std::min(best[cfg], triple_ms[cfg]);
    };
    // Paired comparison at the finest granularity: each triple runs the
    // three configs back-to-back (a ~2 ms window, so host / simulated-disk
    // drift is effectively constant across the triple and cancels in the
    // ratio), order rotating so any residual within-triple bias cancels
    // too. Every 5th triple re-warms untimed: whoever runs first after an
    // LRU eviction pays disk fetches, and that belongs to no config. The
    // median over all per-triple ratios then rejects the odd jittery triple
    // that a min-of-mins would fold into the gate.
    for (int triple = 0; triple < kTriples; ++triple) {
      if (triple % 5 == 0) {
        obs::SetMetricsEnabled(false);
        obs::SetTraceEnabled(false);
        if (!dg->GetSnapshots(times, kCompAll).ok()) std::abort();
      }
      for (int j = 0; j < 3; ++j) {
        run_config((triple + j) % 3);
      }
      ratio_on.push_back(triple_ms[kOn] / triple_ms[kOff]);
      ratio_sampled.push_back(triple_ms[kSampled] / triple_ms[kOff]);
    }
    obs::SetTraceEnabled(false);
    obs::SetMetricsEnabled(GetEnvInt("HISTGRAPH_METRICS", 1) != 0);
    auto median_overhead_pct = [](std::vector<double> r) {
      std::sort(r.begin(), r.end());
      return (r[r.size() / 2] - 1.0) * 100.0;
    };
    const double off_ms = best[kOff];
    const double on_ms = best[kOn];
    const double sampled_ms = best[kSampled];
    const double overhead_pct = median_overhead_pct(ratio_on);
    const double sampled_pct = median_overhead_pct(ratio_sampled);
    std::printf("\nobservability overhead (k=8 multipoint, serial): off %s, on %s "
                "(%+.2f%%; debug gate < 3.5%%), sampled %s (%+.2f%%; "
                "production gate < 2%%)\n",
                FormatMs(off_ms).c_str(), FormatMs(on_ms).c_str(), overhead_pct,
                FormatMs(sampled_ms).c_str(), sampled_pct);
    ReportResult("multipoint_k8_obs_off", off_ms * 1e6);
    ReportResult("multipoint_k8_obs_on", on_ms * 1e6);
    ReportResult("multipoint_k8_obs_sampled", sampled_ms * 1e6);
    // Percent in thousandths (the report writes integers): 1500 = 1.5%.
    ReportResult("obs_overhead_k8_pct_milli", overhead_pct * 1e3);
    ReportResult("obs_overhead_k8_sampled_pct_milli", sampled_pct * 1e3);
  }

  // --- Structural sharing across emitted snapshots --------------------------
  // k closely spaced snapshots differ by a handful of events each; the emit
  // cost of the (k-1) extra snapshots should scale with those deltas, not
  // with the size of the graph. Reported: the marginal per-snapshot emit time
  // (T(k) - T(1)) / (k - 1), the *resident* bytes of the k results (heap
  // parts deduped by pointer — shared structure counts once), and
  // shared_chunk_ratio = the fraction of store-part references that are
  // shared with another of the k snapshots (0 = every snapshot is a full
  // private copy, -> 1 = near-total structural sharing).
  {
    std::printf("\nemit cost for k=8 closely spaced snapshots (serial executor):\n");
    dg->SetTaskPool(nullptr);
    constexpr int kShare = 8;
    const Timestamp spacing = 4;  // ~a few dozen events apart on Dataset 1.
    // Late in the history, where the graph is at its largest: this is where
    // emit cost proportional to |graph| (clone-per-epoch) and emit cost
    // proportional to |delta| (chunked overlay) differ the most.
    const Timestamp share_base = data.max_time - (kShare + 2) * spacing;
    std::vector<Timestamp> close_times;
    for (int i = 0; i < kShare; ++i) close_times.push_back(share_base + i * spacing);

    if (!dg->GetSnapshots(close_times, kCompAll).ok()) std::abort();  // Warm.
    double t1_ms = 1e30, tk_ms = 1e30;
    std::vector<Snapshot> kept;
    for (int rep = 0; rep < 5; ++rep) {  // Min of 5: emits are microseconds.
      Stopwatch sw;
      auto one = dg->GetSnapshots({close_times[0]}, kCompAll);
      if (!one.ok()) std::abort();
      t1_ms = std::min(t1_ms, sw.ElapsedMillis());
      sw.Restart();
      auto many = dg->GetSnapshots(close_times, kCompAll);
      if (!many.ok()) std::abort();
      tk_ms = std::min(tk_ms, sw.ElapsedMillis());
      kept = std::move(many).value();
    }
    const double emit_ms = (tk_ms - t1_ms) / (kShare - 1);

    std::unordered_map<const void*, size_t> unique_parts;
    size_t total_refs = 0;
    for (const Snapshot& s : kept) {
      s.ForEachStorePart([&](const void* part, size_t bytes) {
        unique_parts.emplace(part, bytes);
        ++total_refs;
      });
    }
    uint64_t resident = 0;
    for (const auto& [part, bytes] : unique_parts) resident += bytes;
    const double shared_ratio =
        total_refs == 0
            ? 0.0
            : 1.0 - static_cast<double>(unique_parts.size()) /
                        static_cast<double>(total_refs);

    std::printf("per-snapshot emit time: %.1f us (T1 %s, T%d %s)\n",
                emit_ms * 1e3, FormatMs(t1_ms).c_str(), kShare,
                FormatMs(tk_ms).c_str());
    std::printf("resident bytes of %d snapshots: %s (%zu unique parts / %zu refs, "
                "shared ratio %.3f)\n",
                kShare, FormatBytes(resident).c_str(), unique_parts.size(),
                total_refs, shared_ratio);
    ReportResult("emit_per_snapshot_k8", emit_ms * 1e6);
    ReportResult("resident_bytes_k8", tk_ms * 1e6, resident);
    // Dimensionless ratio scaled to parts-per-million (the report writes
    // integer values): 842000 = 84.2% of part references shared.
    ReportResult("shared_chunk_ratio", shared_ratio * 1e6);
  }

  // --- Async prefetch under fetch latency ----------------------------------
  // The acceptance workload of the prefetch pipeline (PR 3): every fetch pays
  // a per-read latency (default 100us; HISTGRAPH_PREFETCH_LAT_US), the
  // decoded LRU is off so each timed query performs real fetches, and the
  // blocking path (SetIoPool(nullptr) — PR 2 behavior) runs against the
  // prefetched path on the same plans. Struct-only retrieval keeps the apply
  // work small relative to the fetch latency the prefetcher hides. With
  // HISTGRAPH_BENCH_STORE=disk (the CI smoke job) the fetches hit a real
  // DiskKVStore.
  std::printf("\nasync prefetch vs blocking fetch (latency-dominated store):\n");
  KVStoreOptions lat_kv;
  lat_kv.read_latency_us =
      static_cast<uint32_t>(GetEnvInt("HISTGRAPH_PREFETCH_LAT_US", 100));
  lat_kv.read_throughput_mbps = 0;
  auto lat_store = NewBenchStore(lat_kv);
  DeltaGraphOptions lat_opts = opts;
  // Fine leaves: a latency-bound store rewards many small fetches (the paper
  // sizes L for exactly this trade-off), and they keep per-fetch decode work
  // small enough that a single-core box can still overlap the seek sleeps.
  lat_opts.leaf_size = std::max<size_t>(100, data.events.size() / 400);
  auto lat_dg = BuildIndex(lat_store.get(), data, lat_opts);
  lat_dg->SetDecodedCacheCapacity(0);  // Every run pays the fetch latency.
  lat_dg->SetTaskPool(&pool);
  // Default matches IoPool::Shared() so the reported speedup is what a
  // default configuration actually gets.
  const int io_threads = static_cast<int>(GetEnvInt("HISTGRAPH_IO_THREADS", 8));
  if (io_threads < 1) {  // Honor the documented process-wide disable.
    std::printf("prefetch disabled (HISTGRAPH_IO_THREADS=%d); skipping table\n",
                io_threads);
    return 0;
  }
  IoPool io(io_threads);
  std::printf("read latency %uus, io pool %d thread(s)\n\n", lat_kv.read_latency_us,
              io.parallelism());
  PrintRow({"# queries", "blocking", "prefetch", "speedup", "batch width"}, 16);
  for (int k : {4, 8, 12}) {
    // Spread across the whole history (distinct plan subtrees, one fetch set
    // each) rather than one month apart: the month-apart points of the first
    // table share almost all of their edges, leaving no latency to hide.
    const std::vector<Timestamp> times = UniformTimepoints(data, k);

    lat_dg->SetIoPool(nullptr);  // PR 2 blocking-fetch path.
    Stopwatch sw;
    auto blocking = lat_dg->GetSnapshots(times, kCompStruct);
    if (!blocking.ok()) std::abort();
    const double blocking_ms = sw.ElapsedMillis();

    lat_dg->SetIoPool(&io);
    // Cross-delta batching: each I/O shard drains its queued fetches into one
    // KVStore::MultiGet per wakeup. The counter deltas around the timed run
    // yield the average number of deltas coalesced per round-trip.
    const size_t mg_before = lat_dg->delta_store().batched_multigets();
    const size_t rd_before = lat_dg->delta_store().batched_reads();
    sw.Restart();
    auto prefetched = lat_dg->GetSnapshots(times, kCompStruct);
    if (!prefetched.ok()) std::abort();
    const double prefetch_ms = sw.ElapsedMillis();
    const size_t mg = lat_dg->delta_store().batched_multigets() - mg_before;
    const size_t rd = lat_dg->delta_store().batched_reads() - rd_before;
    const double batch_width = mg == 0 ? 0.0 : static_cast<double>(rd) / mg;
    for (size_t i = 0; i < times.size(); ++i) {  // Paths must agree.
      if (!prefetched.value()[i].Equals(blocking.value()[i])) std::abort();
    }

    char speedup[16], width[24];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", blocking_ms / prefetch_ms);
    std::snprintf(width, sizeof(width), "%.1f (%zu rt)", batch_width, mg);
    PrintRow({std::to_string(k), FormatMs(blocking_ms), FormatMs(prefetch_ms),
              speedup, width},
             16);
    ReportResult("latency_blocking_k" + std::to_string(k), blocking_ms * 1e6);
    ReportResult("latency_prefetch_k" + std::to_string(k), prefetch_ms * 1e6);
    // Dimensionless: average deltas per storage round-trip, in thousandths.
    ReportResult("prefetch_batch_width_k" + std::to_string(k), batch_width * 1e3);
  }

  std::printf(
      "\npaper shape: multipoint far below k independent retrievals; the\n"
      "parallel executor should pull further ahead as k (independent plan\n"
      "subtrees) grows, given >= 2 real cores; prefetch hides fetch latency\n"
      "even on one core (the I/O pool sleeps, the executor applies).\n");
  return 0;
}
