// Figure 8(c): multipoint retrieval vs repeated singlepoint retrieval.
//
// The paper retrieves 2..6 snapshots spaced one month apart from Dataset 1;
// the Steiner-planned multipoint query fetches shared deltas once and wins
// decisively because adjacent snapshots overlap heavily.

#include "bench/bench_common.h"

int main() {
  using namespace hgdb;
  using namespace hgdb::bench;
  PrintHeader("Figure 8(c): multipoint query vs repeated singlepoint queries");
  OpenReport("fig8c_multipoint");
  Dataset data = MakeDataset1();
  std::printf("dataset: %s, %zu events\n\n", data.name.c_str(), data.events.size());

  auto store = NewSimDiskStore();
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(500, data.events.size() / 40);
  opts.arity = 4;
  opts.functions = {"intersection"};
  opts.maintain_current = false;
  auto dg = BuildIndex(store.get(), data, opts);

  // Time points one "month" (30 days) apart in the middle of the history.
  const Timestamp base = data.min_time + (data.max_time - data.min_time) / 2;
  PrintRow({"# queries", "singlepoints", "multipoint", "ratio"}, 16);
  for (int k = 2; k <= 6; ++k) {
    std::vector<Timestamp> times;
    for (int i = 0; i < k; ++i) times.push_back(base + i * 30);

    Stopwatch sw;
    for (Timestamp t : times) {
      auto snap = dg->GetSnapshot(t, kCompAll);
      if (!snap.ok()) std::abort();
    }
    const double single_ms = sw.ElapsedMillis();

    sw.Restart();
    auto snaps = dg->GetSnapshots(times, kCompAll);
    if (!snaps.ok()) std::abort();
    const double multi_ms = sw.ElapsedMillis();

    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.2fx", single_ms / multi_ms);
    PrintRow({std::to_string(k), FormatMs(single_ms), FormatMs(multi_ms), ratio}, 16);
    ReportResult("singlepoints_k" + std::to_string(k), single_ms * 1e6);
    ReportResult("multipoint_k" + std::to_string(k), multi_ms * 1e6);
  }
  std::printf("\npaper shape: multipoint far below k independent retrievals.\n");
  return 0;
}
