// statz_view: renders a HistGraphServer::StatusJSON() dump — the server's
// statz surface — as a human-readable status page: lifetime counters,
// per-stage latency attribution, ingest-strand health (queue depth/age, lag,
// watchdog stalls), the published frontier, and the flight recorder's
// retained traces (recent ring + slow-query log).
//
// Usage:
//   statz_view <statz.json>    render a saved StatusJSON dump (bench_traffic
//                              writes one when HISTGRAPH_STATZ_OUT is set)
//   statz_view -               same, reading stdin
//   statz_view --demo          spin up an in-memory HistGraphServer, push
//                              traffic through it (including one injected
//                              slow query), and render its live StatusJSON
//                              (the CI smoke for the whole statz pipeline)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "kvstore/kv_store.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "server/hist_graph_server.h"
#include "workload/generators.h"

namespace hgdb {
namespace {

std::string FormatDurUs(double us) {
  char buf[32];
  if (us >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", us / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f us", us);
  }
  return buf;
}

void PrintCounterRow(const char* name, double value) {
  std::printf("  %-28s %12.0f\n", name, value);
}

/// One histogram line: count plus the latency quantiles the metrics JSON
/// carries.
void PrintHistRow(const std::string& name, const obs::JsonValue& h) {
  std::printf("  %-28s count %-8.0f p50 %-10s p95 %-10s p99 %s\n",
              name.c_str(), h["count"].AsDouble(),
              FormatDurUs(h["p50"].AsDouble()).c_str(),
              FormatDurUs(h["p95"].AsDouble()).c_str(),
              FormatDurUs(h["p99"].AsDouble()).c_str());
}

void PrintFlightEntry(const obs::JsonValue& e) {
  std::string tag = e["query"].AsString();
  if (e.Has("event")) tag += " [" + e["event"].AsString() + "]";
  std::printf("  #%-5lld %-32s %10s  epoch %-6lld events %-8lld",
              static_cast<long long>(e["seq"].AsInt()), tag.c_str(),
              FormatDurUs(e["total_us"].AsDouble()).c_str(),
              static_cast<long long>(e["epoch"].AsInt()),
              static_cast<long long>(e["event_count"].AsInt()));
  if (e.Has("shard_skew")) {
    std::printf("  skew %.2f", e["shard_skew"].AsDouble());
  }
  if (e.Has("spans")) {
    std::printf("  spans %zu", e["spans"].Items().size());
  }
  std::printf("\n");
}

int RenderStatus(const obs::JsonValue& status) {
  if (!status.is_object() || !status.Has("server")) {
    std::fprintf(stderr, "statz_view: input is not a StatusJSON object\n");
    return 1;
  }
  const obs::JsonValue& server = status["server"];
  const obs::JsonValue& ingest = status["ingest"];
  const obs::JsonValue& watchdog = status["watchdog"];
  const obs::JsonValue& frontier = status["frontier"];
  const obs::JsonValue& sampler = status["sampler"];
  const obs::JsonValue& flight = status["flight_recorder"];
  const obs::JsonValue& metrics = status["metrics"];

  std::printf("== server ==\n");
  PrintCounterRow("queries_admitted", server["queries_admitted"].AsDouble());
  PrintCounterRow("queries_rejected", server["queries_rejected"].AsDouble());
  PrintCounterRow("deadlines_exceeded", server["deadlines_exceeded"].AsDouble());
  PrintCounterRow("slow_queries", server["slow_queries"].AsDouble());
  PrintCounterRow("batches_appended", server["batches_appended"].AsDouble());
  PrintCounterRow("events_appended", server["events_appended"].AsDouble());
  PrintCounterRow("finalizes", server["finalizes"].AsDouble());
  PrintCounterRow("appends_rejected", server["appends_rejected"].AsDouble());
  std::printf("  active %lld/%lld, sampling 1-in-%lld, slow threshold %s\n",
              static_cast<long long>(server["active_queries"].AsInt()),
              static_cast<long long>(server["max_concurrent_queries"].AsInt()),
              static_cast<long long>(server["trace_sample_every_n"].AsInt()),
              FormatDurUs(server["slow_query_us"].AsDouble()).c_str());

  std::printf("\n== stage latency attribution ==\n");
  const obs::JsonValue& hists = metrics["histograms"];
  for (const char* stage :
       {"server.stage_plan_us", "server.stage_fetch_us",
        "server.stage_execute_us", "server.stage_merge_us",
        "server.query_us"}) {
    if (hists.Has(stage)) PrintHistRow(stage, hists[stage]);
  }

  std::printf("\n== ingest strand ==\n");
  std::printf("  queue depth %lld, oldest queued %s, lag %s, %s\n",
              static_cast<long long>(ingest["queue_depth"].AsInt()),
              FormatDurUs(ingest["queue_age_us"].AsDouble()).c_str(),
              FormatDurUs(ingest["lag_us"].AsDouble()).c_str(),
              ingest["busy"].AsBool() ? "busy" : "idle");
  std::printf("  applied seq %lld / next %lld\n",
              static_cast<long long>(ingest["applied_seq"].AsInt()),
              static_cast<long long>(ingest["next_seq"].AsInt()));
  for (const char* h : {"server.ingest_dwell_us", "server.epoch_publish_us"}) {
    if (hists.Has(h)) PrintHistRow(h, hists[h]);
  }
  if (!ingest["error"].AsString().empty()) {
    std::printf("  INGEST ERROR: %s\n", ingest["error"].AsString().c_str());
  }
  std::printf("  watchdog: %s, budget %s, stalls %lld",
              watchdog["enabled"].AsBool() ? "enabled" : "disabled",
              FormatDurUs(watchdog["budget_us"].AsDouble()).c_str(),
              static_cast<long long>(watchdog["stalls"].AsInt()));
  if (ingest["busy"].AsBool()) {
    std::printf(", current op running %s",
                FormatDurUs(ingest["current_op_us"].AsDouble()).c_str());
  }
  std::printf("\n");

  std::printf("\n== frontier ==\n");
  std::printf("  epoch %lld, %lld events visible, published %s ago\n",
              static_cast<long long>(frontier["epoch"].AsInt()),
              static_cast<long long>(frontier["event_count"].AsInt()),
              FormatDurUs(frontier["age_us"].AsDouble()).c_str());

  std::printf("\n== trace sampling ==\n");
  std::printf("  1-in-%lld, arm threshold %s, sampled %lld, slow observed "
              "%lld, armed %lld\n",
              static_cast<long long>(sampler["every_n"].AsInt()),
              FormatDurUs(sampler["arm_threshold_us"].AsDouble()).c_str(),
              static_cast<long long>(sampler["sampled"].AsInt()),
              static_cast<long long>(sampler["slow_observed"].AsInt()),
              static_cast<long long>(sampler["armed_remaining"].AsInt()));

  std::printf("\n== flight recorder ==\n");
  std::printf("  recorded %lld (slow %lld), slow threshold %s\n",
              static_cast<long long>(flight["recorded"].AsInt()),
              static_cast<long long>(flight["slow_recorded"].AsInt()),
              FormatDurUs(flight["slow_threshold_us"].AsDouble()).c_str());
  const auto& slow = flight["slow"].Items();
  if (!slow.empty()) {
    std::printf("  slow-query log (%zu):\n", slow.size());
    for (const auto& e : slow) PrintFlightEntry(e);
  }
  const auto& recent = flight["recent"].Items();
  std::printf("  recent ring (%zu):\n", recent.size());
  // The recent ring can hold a lot of traces; show the newest few.
  const size_t show = recent.size() > 8 ? 8 : recent.size();
  for (size_t i = recent.size() - show; i < recent.size(); ++i) {
    PrintFlightEntry(recent[i]);
  }
  return 0;
}

int RenderText(const std::string& text) {
  std::string err;
  const obs::JsonValue status = obs::JsonValue::Parse(text, &err);
  if (!status.is_object()) {
    std::fprintf(stderr, "statz_view: malformed input: %s\n", err.c_str());
    return 1;
  }
  return RenderStatus(status);
}

/// A live server exercised end to end: ingest through the strand, sampled
/// queries, one deliberately slow query captured by the flight recorder, and
/// the resulting StatusJSON rendered. CI runs this as the statz smoke test.
int RunDemo() {
  RandomTraceOptions topts;
  topts.num_events = 6000;
  topts.seed = 20260808;
  GeneratedTrace gen = GenerateRandomTrace(topts);

  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Global().ResetAll();
  obs::FlightRecorder::Global().Clear();
  obs::TraceSampler::Global().ResetCounters();

  auto store = NewMemKVStore();
  HistGraphServerOptions sopts;
  sopts.manager.index.leaf_size = 80;
  sopts.manager.index.arity = 3;
  sopts.trace_sample_every_n = 4;
  sopts.slow_query_us = 1;  // Everything is "slow": fills the slow log.
  sopts.watchdog_budget_us = 50000;
  auto server = HistGraphServer::Create(store.get(), sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "demo: create failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  HistGraphServer& s = *server.value();
  for (size_t i = 0; i < gen.events.size(); i += 512) {
    const size_t end = i + 512 < gen.events.size() ? i + 512 : gen.events.size();
    if (!s.Append(std::vector<Event>(gen.events.begin() + i,
                                     gen.events.begin() + end))
             .ok()) {
      std::fprintf(stderr, "demo: append failed\n");
      return 1;
    }
  }
  if (!s.Finalize().ok() || !s.Flush().ok()) {
    std::fprintf(stderr, "demo: finalize failed\n");
    return 1;
  }
  const Timestamp lo = gen.events.front().time;
  const Timestamp hi = gen.events.back().time;
  for (int i = 0; i < 16; ++i) {
    auto r = s.Retrieve({lo + (hi - lo) * (i % 7) / 7, hi});
    if (!r.ok()) {
      std::fprintf(stderr, "demo: retrieve failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
  }
  return RenderText(s.StatusJSON());
}

int Run(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: statz_view <statz.json | - | --demo>\n"
                 "  renders HistGraphServer::StatusJSON() as a status page\n");
    return argc < 2 ? 1 : 0;
  }
  if (std::strcmp(argv[1], "--demo") == 0) return RunDemo();

  std::string text;
  if (std::strcmp(argv[1], "-") == 0) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "statz_view: cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  return RenderText(text);
}

}  // namespace
}  // namespace hgdb

int main(int argc, char** argv) { return hgdb::Run(argc, argv); }
