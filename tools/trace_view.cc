// trace_view: renders the per-query trace JSON the retrieval path emits
// (HISTGRAPH_TRACE=1 / HISTGRAPH_TRACE_OUT=<file>, or session->LastTrace())
// as a human-readable span tree with a per-query cost breakdown.
//
// Usage:
//   trace_view <file.json>     render every trace in the file (one JSON
//                              object per line, the HISTGRAPH_TRACE_OUT
//                              format; a single pretty-printed object works
//                              too)
//   trace_view -               same, reading stdin
//   trace_view --demo          build a small in-memory partitioned index,
//                              run one traced multipoint retrieval through a
//                              PartitionedRetrievalSession, and render the
//                              resulting trace (the CI smoke for the whole
//                              tracing pipeline)
//
// Example rendering:
//   query partitioned_multipoint  total 12.41 ms
//     fetches 38 (prefetched 36, demand 2, coverage 94.7%) | lru 31/38 hits
//     kv reads 87 keys, 412.3 KB read, 412.3 KB decoded
//     shard (shard=0, steps=12)                   4.07 ms
//       io.drain (claimed=9, kv_keys=27)          2.93 ms
//     ...

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "deltagraph/partitioned_delta_graph.h"
#include "exec/partitioned_session.h"
#include "kvstore/kv_store.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "workload/generators.h"

namespace hgdb {
namespace {

std::string FormatDurUs(double us) {
  char buf[32];
  if (us >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", us / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f us", us);
  }
  return buf;
}

std::string FormatBytes(double bytes) {
  char buf[32];
  if (bytes >= 10.0 * (1 << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / (1 << 20));
  } else if (bytes >= 10.0 * (1 << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

/// The span keys ToJSON always writes; everything else on a span object is a
/// recorded attribute worth showing.
bool IsStructuralKey(const std::string& key) {
  return key == "id" || key == "parent" || key == "name" ||
         key == "start_us" || key == "dur_us";
}

void PrintSpan(const std::vector<obs::JsonValue>& spans, size_t index,
               int depth, double total_us) {
  const obs::JsonValue& span = spans[index];
  std::string attrs;
  for (const auto& [key, value] : span.Members()) {
    if (IsStructuralKey(key)) continue;
    if (!attrs.empty()) attrs += ", ";
    attrs += key + "=";
    if (value.kind() == obs::JsonValue::Kind::kString) {
      attrs += value.AsString();
    } else {
      std::ostringstream num;
      num << value.AsDouble();
      attrs += num.str();
    }
  }
  const double dur = span["dur_us"].AsDouble();
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += span["name"].AsString();
  if (!attrs.empty()) label += " (" + attrs + ")";
  const double share = total_us > 0 ? dur / total_us * 100.0 : 0.0;
  std::printf("  %-58s %10s %5.1f%%\n", label.c_str(),
              FormatDurUs(dur).c_str(), share);
  const int64_t id = spans[index]["id"].AsInt();
  for (size_t j = 0; j < spans.size(); ++j) {
    if (spans[j]["parent"].AsInt(-1) == id) {
      PrintSpan(spans, j, depth + 1, total_us);
    }
  }
}

void RenderTrace(const obs::JsonValue& trace) {
  const obs::JsonValue& summary = trace["summary"];
  const double total_us = trace["total_us"].AsDouble();
  std::printf("query %-28s total %s\n", trace["query"].AsString().c_str(),
              FormatDurUs(total_us).c_str());

  const double fetches = summary["fetches_total"].AsDouble();
  const double prefetched = summary["fetches_prefetched"].AsDouble();
  const double demand = summary["fetches_demand"].AsDouble();
  const double hits = summary["lru_hits"].AsDouble();
  const double misses = summary["lru_misses"].AsDouble();
  std::printf(
      "  fetches %.0f (prefetched %.0f, demand %.0f, coverage %.1f%%) | "
      "lru %.0f/%.0f hits\n",
      fetches, prefetched, demand,
      summary["prefetch_coverage"].AsDouble() * 100.0, hits, hits + misses);
  std::printf("  kv reads %.0f keys, %s read, %s decoded\n",
              summary["kv_reads"].AsDouble(),
              FormatBytes(summary["bytes_read"].AsDouble()).c_str(),
              FormatBytes(summary["bytes_decoded"].AsDouble()).c_str());

  const auto& spans = trace["spans"].Items();
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i]["parent"].AsInt(-1) < 0) PrintSpan(spans, i, 0, total_us);
  }
  std::printf("\n");
}

/// Renders every JSON object in `text`: the HISTGRAPH_TRACE_OUT format is one
/// object per line, but a single multi-line object (a pasted trace) parses
/// whole too.
int RenderText(const std::string& text) {
  std::string err;
  const obs::JsonValue whole = obs::JsonValue::Parse(text, &err);
  if (whole.is_object()) {
    RenderTrace(whole);
    return 0;
  }
  int rendered = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const obs::JsonValue trace = obs::JsonValue::Parse(line, &err);
    if (!trace.is_object()) {
      std::fprintf(stderr, "trace_view: skipping malformed line: %s\n",
                   err.c_str());
      continue;
    }
    RenderTrace(trace);
    ++rendered;
  }
  if (rendered == 0) {
    std::fprintf(stderr, "trace_view: no parsable trace objects in input\n");
    return 1;
  }
  return 0;
}

/// One traced retrieval against a freshly built 3-shard in-memory index —
/// exercises plan/shard/drain/merge spans end to end without needing a saved
/// trace file. CI runs this as the tracing smoke test.
int RunDemo() {
  RandomTraceOptions topts;
  topts.num_events = 6000;
  topts.seed = 20260808;
  GeneratedTrace gen = GenerateRandomTrace(topts);

  auto store = NewMemKVStore();
  DeltaGraphOptions opts;
  opts.leaf_size = 80;
  opts.arity = 3;
  auto pdg = PartitionedDeltaGraph::Create(store.get(), 3, opts);
  if (!pdg.ok()) {
    std::fprintf(stderr, "demo: create failed: %s\n",
                 pdg.status().ToString().c_str());
    return 1;
  }
  auto& index = *pdg.value();
  if (!index.AppendAll(gen.events).ok() || !index.Finalize().ok()) {
    std::fprintf(stderr, "demo: ingest failed\n");
    return 1;
  }

  const bool was_tracing = obs::TraceEnabled();
  obs::SetTraceEnabled(true);
  std::string json;
  {
    const Timestamp lo = gen.events.front().time;
    const Timestamp hi = gen.events.back().time;
    PartitionedRetrievalSession session(&index);
    session.Submit({lo + (hi - lo) / 4, lo + (hi - lo) / 2, hi});
    session.Submit({hi - (hi - lo) / 3});
    if (!session.Wait().ok()) {
      std::fprintf(stderr, "demo: retrieval failed\n");
      obs::SetTraceEnabled(was_tracing);
      return 1;
    }
    const obs::QueryTrace* trace = session.LastTrace();
    if (trace == nullptr) {
      std::fprintf(stderr, "demo: session produced no trace\n");
      obs::SetTraceEnabled(was_tracing);
      return 1;
    }
    json = trace->ToJSON();
  }
  obs::SetTraceEnabled(was_tracing);
  return RenderText(json);
}

int Run(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: trace_view <trace.json | - | --demo>\n"
                 "  renders HISTGRAPH_TRACE output (one JSON object per "
                 "line) as a span tree\n");
    return argc < 2 ? 1 : 0;
  }
  if (std::strcmp(argv[1], "--demo") == 0) return RunDemo();

  std::string text;
  if (std::strcmp(argv[1], "-") == 0) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "trace_view: cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  return RenderText(text);
}

}  // namespace
}  // namespace hgdb

int main(int argc, char** argv) { return hgdb::Run(argc, argv); }
