// HistGraphServer tests: the epoch-visibility contract under real
// concurrency, plus the service-shape failure paths (admission rejection,
// cooperative deadlines, bounded ingest queue).
//
// The central property is the oracle check: a query result carries the
// pinned frontier's event_count, and the snapshots must equal a naive replay
// of EXACTLY the first event_count appended events — no torn batches, no
// events from the future, no lost suffix — while the ingest strand keeps
// publishing epochs underneath the readers. Run under TSan, this doubles as
// the data-race proof of the whole frontier machinery.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "server/hist_graph_server.h"
#include "tests/test_oracle.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hgdb {
namespace {

struct ReaderStats {
  int queries = 0;
  uint64_t last_epoch = 0;
  std::vector<std::string> failures;  // gtest asserts are not thread-safe.
};

// One reader thread: random multipoint queries against the live server, each
// result checked against the replay oracle over the event_count-prefix the
// pinned frontier claims to reflect.
void ReaderLoop(HistGraphServer* server, const std::vector<Event>& log,
                uint64_t seed, const std::atomic<bool>& writer_done,
                ReaderStats* out) {
  test::SeededRng rng(seed);
  auto note = [&](const std::string& s) {
    if (out->failures.size() < 4) out->failures.push_back(s);
  };
  bool done_seen = false;
  int after_done = 0;
  while (!done_seen || after_done < 2) {
    if (writer_done.load(std::memory_order_acquire)) {
      done_seen = true;
      ++after_done;  // A couple of queries against the final frontier too.
    }
    const int k = 1 + static_cast<int>(rng.Uniform(3));
    const std::vector<Timestamp> times = test::RandomTimes(rng, log, k);
    const unsigned comps = rng.Chance(0.3) ? kCompStruct : kCompAll;
    auto res = server->Retrieve(times, comps);
    if (!res.ok()) {
      note("Retrieve failed: " + res.status().ToString());
      continue;
    }
    ++out->queries;
    if (res->epoch < out->last_epoch) {
      note("epoch went backwards: " + std::to_string(res->epoch) + " after " +
           std::to_string(out->last_epoch));
    }
    out->last_epoch = res->epoch;
    if (res->event_count > log.size()) {
      note("event_count beyond the log: " + std::to_string(res->event_count));
      continue;
    }
    const std::vector<Event> prefix(log.begin(), log.begin() + res->event_count);
    for (size_t i = 0; i < times.size(); ++i) {
      const auto oracle = test::NaiveReplayOracle::At(prefix, times[i], comps);
      const auto match = oracle.Matches(res->snapshots[i]);
      if (!match) {
        note("epoch " + std::to_string(res->epoch) + " t=" +
             std::to_string(times[i]) + ": " + match.message());
      }
    }
  }
}

TEST(ServerOracleTest, ConcurrentIngestAndRetrievalMatchReplayPrefix) {
  for (uint64_t seed : test::PropertySeeds(20, 8800)) {
    test::SeededRng rng(seed);
    SCOPED_TRACE(rng.Desc());

    RandomTraceOptions topts;
    topts.num_events = 1200;
    topts.seed = seed * 7 + 1;
    const GeneratedTrace trace = GenerateRandomTrace(topts);

    auto store = NewMemKVStore();
    HistGraphServerOptions opts;
    opts.manager.index.leaf_size = 64 + 64 * rng.Uniform(4);
    auto server = HistGraphServer::Create(store.get(), opts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      test::SeededRng wrng(seed ^ 0x571);
      size_t pos = 0;
      while (pos < trace.events.size()) {
        const size_t n =
            std::min(trace.events.size() - pos, 1 + wrng.Uniform(48));
        std::vector<Event> batch(trace.events.begin() + pos,
                                 trace.events.begin() + pos + n);
        pos += n;
        ASSERT_TRUE((*server)->Append(std::move(batch)).ok());
        if (wrng.Chance(0.15)) {
          ASSERT_TRUE((*server)->Finalize().ok());
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      ASSERT_TRUE((*server)->Finalize().ok());
      ASSERT_TRUE((*server)->Flush().ok());
      writer_done.store(true, std::memory_order_release);
    });

    ReaderStats r1, r2;
    std::thread reader1([&] {
      ReaderLoop(server->get(), trace.events, seed * 31 + 1, writer_done, &r1);
    });
    std::thread reader2([&] {
      ReaderLoop(server->get(), trace.events, seed * 31 + 2, writer_done, &r2);
    });
    writer.join();
    reader1.join();
    reader2.join();

    for (const auto& f : r1.failures) ADD_FAILURE() << "reader1: " << f;
    for (const auto& f : r2.failures) ADD_FAILURE() << "reader2: " << f;
    EXPECT_GT(r1.queries + r2.queries, 0);

    // After the final Flush, a fresh query reflects the entire log.
    auto final_res = (*server)->Retrieve(
        {trace.events.back().time + 1}, kCompAll);
    ASSERT_TRUE(final_res.ok()) << final_res.status().ToString();
    EXPECT_EQ(final_res->event_count, trace.events.size());
    const auto oracle = test::NaiveReplayOracle::At(
        trace.events, trace.events.back().time + 1, kCompAll);
    EXPECT_TRUE(oracle.Matches(final_res->snapshots[0]));

    const auto stats = (*server)->stats();
    EXPECT_EQ(stats.events_appended, trace.events.size());
    EXPECT_EQ(stats.queries_rejected, 0u);
  }
}

// The adaptive-materialization variant of the oracle property: readers run
// against live ingest while the advisor concurrently materializes and evicts
// nodes under a deliberately tiny budget (periodic ticks on the ingest
// strand PLUS a thread spamming RunAdvisorOnce). Every result must still
// equal the naive replay at its claimed (epoch, event_count), and epochs
// must stay monotone per reader — materialization churn is invisible to the
// visibility contract. Run under TSan this is the data-race proof for the
// advisor's frontier-published mutations against pinned queries.
TEST(ServerOracleTest, AdaptiveChurnKeepsReplayOracle) {
  for (uint64_t seed : test::PropertySeeds(6, 9900)) {
    test::SeededRng rng(seed);
    SCOPED_TRACE(rng.Desc());

    RandomTraceOptions topts;
    topts.num_events = 1200;
    topts.seed = seed * 7 + 1;
    const GeneratedTrace trace = GenerateRandomTrace(topts);

    auto store = NewMemKVStore();
    HistGraphServerOptions opts;
    opts.manager.index.leaf_size = 64 + 64 * rng.Uniform(4);
    // A budget of a few leaves forces constant materialize/evict pressure.
    opts.manager.materialization_budget_bytes = 256 * 1024;
    opts.advisor_tick_us = 500;
    opts.advisor.min_touches = 1;
    opts.advisor.max_materialize_per_tick = 2;
    opts.advisor.decay_every_ticks = 2;
    opts.advisor.hysteresis = 1.0;  // No incumbent edge: maximize churn.
    auto server = HistGraphServer::Create(store.get(), opts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    ASSERT_NE((*server)->advisor(), nullptr);

    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      test::SeededRng wrng(seed ^ 0x571);
      size_t pos = 0;
      while (pos < trace.events.size()) {
        const size_t n =
            std::min(trace.events.size() - pos, 1 + wrng.Uniform(48));
        std::vector<Event> batch(trace.events.begin() + pos,
                                 trace.events.begin() + pos + n);
        pos += n;
        ASSERT_TRUE((*server)->Append(std::move(batch)).ok());
        if (wrng.Chance(0.15)) {
          ASSERT_TRUE((*server)->Finalize().ok());
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      ASSERT_TRUE((*server)->Finalize().ok());
      ASSERT_TRUE((*server)->Flush().ok());
      writer_done.store(true, std::memory_order_release);
    });
    std::thread churner([&] {
      while (!writer_done.load(std::memory_order_acquire)) {
        auto tick = (*server)->RunAdvisorOnce();
        ASSERT_TRUE(tick.ok()) << tick.status().ToString();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    ReaderStats r1, r2;
    std::thread reader1([&] {
      ReaderLoop(server->get(), trace.events, seed * 31 + 1, writer_done, &r1);
    });
    std::thread reader2([&] {
      ReaderLoop(server->get(), trace.events, seed * 31 + 2, writer_done, &r2);
    });
    writer.join();
    churner.join();
    reader1.join();
    reader2.join();

    for (const auto& f : r1.failures) ADD_FAILURE() << "reader1: " << f;
    for (const auto& f : r2.failures) ADD_FAILURE() << "reader2: " << f;
    EXPECT_GT(r1.queries + r2.queries, 0);

    // The advisor really ran, and its residency respected the budget.
    const auto* advisor = (*server)->advisor();
    EXPECT_GT(advisor->ticks(), 0u);
    EXPECT_LE(advisor->resident_bytes(),
              opts.manager.materialization_budget_bytes);

    // One last deterministic tick on the fully-ingested index, then the
    // final frontier must still reflect the entire log exactly.
    ASSERT_TRUE((*server)->RunAdvisorOnce().ok());
    auto final_res =
        (*server)->Retrieve({trace.events.back().time + 1}, kCompAll);
    ASSERT_TRUE(final_res.ok()) << final_res.status().ToString();
    EXPECT_EQ(final_res->event_count, trace.events.size());
    const auto oracle = test::NaiveReplayOracle::At(
        trace.events, trace.events.back().time + 1, kCompAll);
    EXPECT_TRUE(oracle.Matches(final_res->snapshots[0]));
  }
}

TEST(ServerTest, AdmissionLimitZeroRejectsEveryQuery) {
  auto store = NewMemKVStore();
  HistGraphServerOptions opts;
  opts.max_concurrent_queries = 0;  // Drain mode: reject all.
  auto server = HistGraphServer::Create(store.get(), opts);
  ASSERT_TRUE(server.ok());
  auto res = (*server)->GetSnapshot(10);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsUnavailable()) << res.status().ToString();
  EXPECT_EQ((*server)->stats().queries_rejected, 1u);
  EXPECT_EQ((*server)->stats().queries_admitted, 0u);
}

TEST(ServerTest, DeadlineExceededOnSlowStore) {
  RandomTraceOptions topts;
  topts.num_events = 2000;
  topts.seed = 17;
  const GeneratedTrace trace = GenerateRandomTrace(topts);

  KVStoreOptions kv;
  kv.read_latency_us = 3000;  // Every blob fetch costs 3ms.
  auto store = NewMemKVStore(kv);
  HistGraphServerOptions opts;
  opts.manager.index.leaf_size = 100;
  auto server = HistGraphServer::Create(store.get(), opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Append(trace.events).ok());
  ASSERT_TRUE((*server)->Finalize().ok());
  ASSERT_TRUE((*server)->Flush().ok());

  // An early time forces delta fetches through the slow store; the 50us
  // budget cannot cover one 3ms read, so the deadline trips at the
  // post-execution boundary.
  const Timestamp t = trace.events.back().time / 4;
  auto res = (*server)->GetSnapshot(t, kCompAll, /*deadline_us=*/50);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsDeadlineExceeded()) << res.status().ToString();
  EXPECT_GE((*server)->stats().deadlines_exceeded, 1u);

  // The same query without a deadline succeeds.
  auto ok = (*server)->GetSnapshot(t, kCompAll);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(ServerTest, FullIngestQueueRejectsAppends) {
  auto store = NewMemKVStore();
  HistGraphServerOptions opts;
  opts.max_ingest_queue = 2;
  auto server = HistGraphServer::Create(store.get(), opts);
  ASSERT_TRUE(server.ok());
  (*server)->SetIngestDelayForTesting(10000);  // Strand sleeps 10ms per op.

  int accepted = 0, rejected = 0;
  for (int i = 0; i < 8; ++i) {
    const Status s = (*server)->Append({Event::AddNode(i + 1, i + 1)});
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
      ++rejected;
    }
  }
  // One op in flight + two queued fit; the rest must have been rejected.
  EXPECT_GE(rejected, 1);
  EXPECT_GE(accepted, 2);

  (*server)->SetIngestDelayForTesting(0);
  ASSERT_TRUE((*server)->Flush().ok());
  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.appends_rejected, static_cast<uint64_t>(rejected));
  EXPECT_EQ(stats.events_appended, static_cast<uint64_t>(accepted));
}

TEST(ServerTest, FlushDrainsAndEpochAdvancesPerBatch) {
  auto store = NewMemKVStore();
  auto server = HistGraphServer::Create(store.get(), {});
  ASSERT_TRUE(server.ok());
  const uint64_t epoch0 = (*server)->frontier_epoch();
  ASSERT_TRUE((*server)->Append({Event::AddNode(5, 1)}).ok());
  ASSERT_TRUE(
      (*server)->Append({Event::AddNode(6, 2), Event::AddNode(6, 3)}).ok());
  ASSERT_TRUE(
      (*server)->Append({Event::AddEdge(7, 1, 1, 2, false)}).ok());
  ASSERT_TRUE((*server)->Flush().ok());

  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.batches_appended, 3u);
  EXPECT_EQ(stats.events_appended, 4u);
  // One epoch per batch, atomically visible: a reader sees 0, 1, 2, or 4
  // events, never a torn batch.
  EXPECT_GE(stats.frontier_epoch, epoch0 + 3);

  auto res = (*server)->GetSnapshot(100);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->event_count, 4u);
  EXPECT_EQ(res->snapshots[0].NodeCount(), 3u);
  EXPECT_EQ(res->snapshots[0].EdgeCount(), 1u);

  // Empty batches are a no-op, not an epoch.
  ASSERT_TRUE((*server)->Append({}).ok());
  ASSERT_TRUE((*server)->Flush().ok());
  EXPECT_EQ((*server)->stats().batches_appended, 3u);
}

// ---------------------------------------------------------------------------
// Observability surface: slow-query capture, ingest watchdog, statz
// ---------------------------------------------------------------------------

TEST(ServerObsTest, SlowQueryLogCarriesMatchingEpochAndSpanTree) {
  // The tail-latency attribution contract end to end: a query that crosses
  // the slow threshold must land in the flight recorder's slow-query log
  // with the epoch/event_count it actually pinned and its full span tree.
  obs::FlightRecorder::Global().Clear();
  obs::TraceSampler::Global().ResetCounters();

  RandomTraceOptions topts;
  topts.num_events = 2000;
  topts.seed = 4242;
  const GeneratedTrace trace = GenerateRandomTrace(topts);

  auto store = NewMemKVStore();
  HistGraphServerOptions opts;
  opts.manager.index.leaf_size = 100;
  opts.trace_sample_every_n = 1;  // Trace every query.
  opts.slow_query_us = 1;         // Every real query crosses the threshold.
  // At a 1us threshold the churn queries below are "slow" too; a roomy slow
  // log keeps them from evicting the entry under test, while the small
  // recent ring is guaranteed to cycle past it.
  opts.flight_recent_capacity = 64;
  opts.flight_slow_capacity = 1024;
  auto server = HistGraphServer::Create(store.get(), opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Append(trace.events).ok());
  ASSERT_TRUE((*server)->Finalize().ok());
  ASSERT_TRUE((*server)->Flush().ok());

  const Timestamp hi = trace.events.back().time;
  auto res = (*server)->Retrieve({hi / 3, hi / 2});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GE((*server)->stats().slow_queries, 1u);

  const auto slow = obs::FlightRecorder::Global().Slow();
  ASSERT_FALSE(slow.empty());
  const obs::FlightEntry* entry = nullptr;
  for (const auto& e : slow) {
    if (e.label == "server.multipoint") entry = &e;
  }
  ASSERT_NE(entry, nullptr) << "query missing from the slow-query log";
  EXPECT_EQ(entry->epoch, res->epoch);
  EXPECT_EQ(entry->event_count, res->event_count);
  EXPECT_TRUE(entry->slow);
  EXPECT_TRUE(entry->has_trace);
  EXPECT_FALSE(entry->spans.empty()) << "slow entry lost its span tree";
  EXPECT_GT(entry->total_us, 0.0);

  // It survives recent-ring churn: push enough fast queries to cycle the
  // recent ring, then find the slow entry again by sequence number.
  const uint64_t seq = entry->seq;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*server)->GetSnapshot(hi).ok());
  }
  bool still_there = false;
  for (const auto& e : obs::FlightRecorder::Global().Slow()) {
    if (e.seq == seq) still_there = true;
  }
  EXPECT_TRUE(still_there);
}

TEST(ServerObsTest, WatchdogFlagsStalledIngestOp) {
  auto store = NewMemKVStore();
  HistGraphServerOptions opts;
  opts.watchdog_budget_us = 20000;  // 20ms budget, polled every ~10ms.
  auto server = HistGraphServer::Create(store.get(), opts);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->stats().watchdog_stalls, 0u);

  // Each op dwells 100ms on the strand — 5x over budget; the watchdog must
  // flag it (once per op, so two ops bound the count at two).
  (*server)->SetIngestDelayForTesting(100000);
  ASSERT_TRUE((*server)->Append({Event::AddNode(5, 1)}).ok());
  ASSERT_TRUE((*server)->Append({Event::AddNode(6, 2)}).ok());
  ASSERT_TRUE((*server)->Flush().ok());
  (*server)->SetIngestDelayForTesting(0);

  const auto stats = (*server)->stats();
  EXPECT_GE(stats.watchdog_stalls, 1u);
  EXPECT_LE(stats.watchdog_stalls, 2u);
  EXPECT_EQ(stats.events_appended, 2u);  // Flagged, never killed.
}

TEST(ServerObsTest, StatusJSONCarriesEveryStatzSection) {
  const bool metrics_before = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);

  RandomTraceOptions topts;
  topts.num_events = 1500;
  topts.seed = 99;
  const GeneratedTrace trace = GenerateRandomTrace(topts);

  auto store = NewMemKVStore();
  HistGraphServerOptions opts;
  opts.manager.index.leaf_size = 100;
  opts.trace_sample_every_n = 2;
  opts.slow_query_us = 1;
  auto server = HistGraphServer::Create(store.get(), opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Append(trace.events).ok());
  ASSERT_TRUE((*server)->Finalize().ok());
  ASSERT_TRUE((*server)->Flush().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*server)->GetSnapshot(trace.events.back().time / (i + 1)).ok());
  }

  std::string err;
  const obs::JsonValue status =
      obs::JsonValue::Parse((*server)->StatusJSON(), &err);
  ASSERT_TRUE(status.is_object()) << err;
  for (const char* section : {"server", "ingest", "watchdog", "frontier",
                              "sampler", "flight_recorder", "metrics"}) {
    EXPECT_TRUE(status.Has(section)) << "StatusJSON missing " << section;
  }
  EXPECT_GE(status["server"]["queries_admitted"].AsInt(), 4);
  EXPECT_EQ(status["server"]["trace_sample_every_n"].AsInt(), 2);
  EXPECT_EQ(status["frontier"]["epoch"].AsInt(),
            static_cast<int64_t>((*server)->frontier_epoch()));
  EXPECT_EQ(status["frontier"]["event_count"].AsInt(),
            static_cast<int64_t>(trace.events.size()));
  EXPECT_GE(status["ingest"]["applied_seq"].AsInt(), 2);
  EXPECT_TRUE(status["watchdog"]["enabled"].AsBool());
  EXPECT_EQ(status["sampler"]["every_n"].AsInt(), 2);
  EXPECT_GE(status["flight_recorder"]["recorded"].AsInt(), 1);
  // The per-stage attribution histograms ran with metrics on.
  const obs::JsonValue& hists = status["metrics"]["histograms"];
  for (const char* h : {"server.query_us", "server.stage_plan_us",
                        "server.stage_execute_us", "server.stage_merge_us"}) {
    ASSERT_TRUE(hists.Has(h)) << "missing histogram " << h;
    EXPECT_GE(hists[h]["count"].AsInt(), 1) << h;
  }

  obs::SetMetricsEnabled(metrics_before);
}

}  // namespace
}  // namespace hgdb
