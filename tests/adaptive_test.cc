// MaterializationAdvisor unit tests: budget resolution (env override), the
// disabled path, traffic-driven materialization under a budget, and eviction
// when traffic shifts. Driven deterministically through
// HistGraphServer::RunAdvisorOnce (periodic ticks off), so every decision
// runs on the ingest strand exactly when the test says.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "adaptive/materialization_advisor.h"
#include "server/hist_graph_server.h"
#include "tests/test_oracle.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hgdb {
namespace {

// Restores HISTGRAPH_MAT_BUDGET on scope exit so env-twiddling tests cannot
// leak into later ones.
class EnvBudgetGuard {
 public:
  EnvBudgetGuard() {
    const char* v = std::getenv("HISTGRAPH_MAT_BUDGET");
    if (v != nullptr) saved_ = v;
    had_ = v != nullptr;
  }
  ~EnvBudgetGuard() {
    if (had_) {
      ::setenv("HISTGRAPH_MAT_BUDGET", saved_.c_str(), 1);
    } else {
      ::unsetenv("HISTGRAPH_MAT_BUDGET");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

GeneratedTrace MakeTrace(uint64_t seed, size_t n = 3000) {
  RandomTraceOptions opts;
  opts.num_events = n;
  opts.seed = seed;
  return GenerateRandomTrace(opts);
}

std::unique_ptr<HistGraphServer> MakeServer(KVStore* store,
                                            const GeneratedTrace& trace,
                                            HistGraphServerOptions opts) {
  opts.advisor_tick_us = 0;  // Ticks only via RunAdvisorOnce.
  auto server = HistGraphServer::Create(store, opts);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  if (!server.ok()) return nullptr;
  EXPECT_TRUE((*server)->Append(trace.events).ok());
  EXPECT_TRUE((*server)->Finalize().ok());
  EXPECT_TRUE((*server)->Flush().ok());
  return std::move(server).value();
}

TEST(MaterializationAdvisorTest, EnvOverridesConfiguredBudget) {
  EnvBudgetGuard guard;
  ::unsetenv("HISTGRAPH_MAT_BUDGET");
  EXPECT_EQ(MaterializationAdvisor::ResolveBudgetBytes(0), 0u);
  EXPECT_EQ(MaterializationAdvisor::ResolveBudgetBytes(777), 777u);
  ::setenv("HISTGRAPH_MAT_BUDGET", "12345", 1);
  EXPECT_EQ(MaterializationAdvisor::ResolveBudgetBytes(0), 12345u);
  EXPECT_EQ(MaterializationAdvisor::ResolveBudgetBytes(777), 12345u);
  // An explicit 0 in the environment disables even a configured budget.
  ::setenv("HISTGRAPH_MAT_BUDGET", "0", 1);
  EXPECT_EQ(MaterializationAdvisor::ResolveBudgetBytes(777), 0u);
}

TEST(MaterializationAdvisorTest, DisabledWithoutBudget) {
  EnvBudgetGuard guard;
  ::unsetenv("HISTGRAPH_MAT_BUDGET");
  const GeneratedTrace trace = MakeTrace(4242, 600);
  auto store = NewMemKVStore();
  auto server = MakeServer(store.get(), trace, {});
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->advisor(), nullptr);
  auto tick = server->RunAdvisorOnce();
  EXPECT_FALSE(tick.ok());
  EXPECT_TRUE(tick.status().IsInvalidArgument()) << tick.status().ToString();
}

TEST(MaterializationAdvisorTest, HotTrafficMaterializesUnderBudget) {
  EnvBudgetGuard guard;
  ::unsetenv("HISTGRAPH_MAT_BUDGET");
  const GeneratedTrace trace = MakeTrace(99);
  auto store = NewMemKVStore();
  HistGraphServerOptions opts;
  opts.manager.index.leaf_size = 200;
  opts.manager.materialization_budget_bytes = 1ull << 20;
  opts.advisor.min_touches = 1;
  auto server = MakeServer(store.get(), trace, opts);
  ASSERT_NE(server, nullptr);
  ASSERT_NE(server->advisor(), nullptr);

  // A tick with zero observed traffic must not materialize anything: the
  // policy follows traffic, it does not preload.
  auto idle = server->RunAdvisorOnce();
  ASSERT_TRUE(idle.ok()) << idle.status().ToString();
  EXPECT_EQ(idle->materialized, 0u);

  // Hammer one historical timepoint, then tick until quiescent.
  const Timestamp hot = trace.events.back().time / 2;
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(server->GetSnapshot(hot, kCompAll).ok());
  }
  uint64_t materialized = 0;
  for (int round = 0; round < 8; ++round) {
    auto tick = server->RunAdvisorOnce();
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    materialized += tick->materialized;
    EXPECT_LE(tick->resident_bytes, opts.manager.materialization_budget_bytes);
    if (round > 0 && tick->materialized == 0 && tick->evicted == 0) break;
  }
  EXPECT_GT(materialized, 0u);
  EXPECT_GT(server->advisor()->resident_bytes(), 0u);

  // Correctness is untouched: the hot query still equals the naive replay.
  auto res = server->GetSnapshot(hot, kCompAll);
  ASSERT_TRUE(res.ok());
  const auto oracle = test::NaiveReplayOracle::At(trace.events, hot, kCompAll);
  EXPECT_TRUE(oracle.Matches(res->snapshots[0]));
}

TEST(MaterializationAdvisorTest, TrafficShiftEvictsColdIncumbents) {
  EnvBudgetGuard guard;
  ::unsetenv("HISTGRAPH_MAT_BUDGET");
  const GeneratedTrace trace = MakeTrace(1337);
  auto store = NewMemKVStore();
  HistGraphServerOptions opts;
  opts.manager.index.leaf_size = 200;
  // Room for only a sliver of the index, so phase A's winners must go when
  // phase B's traffic takes over.
  opts.manager.materialization_budget_bytes = 96 * 1024;
  opts.advisor.min_touches = 1;
  opts.advisor.hysteresis = 1.1;
  opts.advisor.decay_every_ticks = 1;  // Age phase A out quickly.
  auto server = MakeServer(store.get(), trace, opts);
  ASSERT_NE(server, nullptr);
  ASSERT_NE(server->advisor(), nullptr);

  const Timestamp span = trace.events.back().time;
  auto hammer = [&](Timestamp t, int n) {
    for (int i = 0; i < n; ++i) ASSERT_TRUE(server->GetSnapshot(t, kCompAll).ok());
  };
  auto settle = [&] {
    for (int round = 0; round < 10; ++round) {
      auto tick = server->RunAdvisorOnce();
      ASSERT_TRUE(tick.ok()) << tick.status().ToString();
      EXPECT_LE(tick->resident_bytes,
                opts.manager.materialization_budget_bytes);
      if (round > 0 && tick->materialized == 0 && tick->evicted == 0) break;
    }
  };

  hammer(span / 4, 32);
  settle();
  const uint64_t after_a = server->advisor()->total_materialized();
  EXPECT_GT(after_a, 0u);

  // Phase B: traffic moves to a far timepoint; decay ages A's counts, so
  // B's nodes outscore the incumbents and the budget forces evictions.
  hammer(span * 3 / 4, 64);
  settle();
  EXPECT_GT(server->advisor()->total_materialized(), after_a);
  EXPECT_GT(server->advisor()->total_evicted(), 0u);

  // Both old and new hot queries still match the replay oracle.
  for (Timestamp t : {span / 4, span * 3 / 4}) {
    auto res = server->GetSnapshot(t, kCompAll);
    ASSERT_TRUE(res.ok());
    const auto oracle = test::NaiveReplayOracle::At(trace.events, t, kCompAll);
    EXPECT_TRUE(oracle.Matches(res->snapshots[0])) << "t=" << t;
  }
}

}  // namespace
}  // namespace hgdb
