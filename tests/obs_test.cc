// Coverage for the observability layer (src/obs/): concurrent exactness of
// sharded counters and histograms (this binary runs under TSan in CI),
// histogram quantile accuracy against a sorted oracle, the metrics-off
// zero-allocation contract (operator-new override proof), registry
// snapshot/delta JSON, and trace completeness over real retrievals — every
// KVStore read a query performs lands in exactly one trace span, and a fully
// prefetched pinned plan reports prefetch coverage 1.0.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "deltagraph/delta_graph.h"
#include "deltagraph/partitioned_delta_graph.h"
#include "exec/fetch_cache.h"
#include "exec/io_pool.h"
#include "exec/prefetcher.h"
#include "exec/retrieval_session.h"
#include "kvstore/kv_store.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "workload/generators.h"

// ---------------------------------------------------------------------------
// Global allocation counter (this test binary only): prove that metric
// recording performs no allocation — neither when the gate is off (the
// near-zero-cost contract) nor on the hot path when it is on.
// ---------------------------------------------------------------------------

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const size_t a =
      static_cast<size_t>(align) < sizeof(void*) ? sizeof(void*)
                                                 : static_cast<size_t>(align);
  void* p = nullptr;
  if (posix_memalign(&p, a, size) == 0) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept { std::free(p); }

namespace hgdb {
namespace {

/// Saves and restores the process-wide metrics/trace gates so tests can flip
/// them without leaking state into the rest of the suite.
class ObsGateGuard {
 public:
  ObsGateGuard()
      : metrics_(obs::MetricsEnabled()), trace_(obs::TraceEnabled()) {}
  ~ObsGateGuard() {
    obs::SetMetricsEnabled(metrics_);
    obs::SetTraceEnabled(trace_);
  }

 private:
  bool metrics_;
  bool trace_;
};

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterConcurrentExactness) {
  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add();
      counter.Add(5);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(),
            uint64_t(kThreads) * kAddsPerThread + uint64_t(kThreads) * 5);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(MetricsTest, CounterIgnoredWhenDisabled) {
  ObsGateGuard guard;
  obs::SetMetricsEnabled(false);
  obs::Counter counter;
  counter.Add(100);
  EXPECT_EQ(counter.Value(), 0u);
  obs::SetMetricsEnabled(true);
  counter.Add(3);
  EXPECT_EQ(counter.Value(), 3u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  obs::Gauge g;
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.Value(), -8);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundsConsistent) {
  // Every value maps into a bucket whose [lower, next-lower) range contains
  // it, and bucket lower bounds are strictly increasing.
  const uint64_t samples[] = {0,   1,    31,   32,   33,    63,     64,
                              100, 1000, 4095, 4096, 65537, 1 << 20,
                              (uint64_t(1) << 39) - 1};
  for (uint64_t v : samples) {
    const int b = obs::Histogram::BucketIndex(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, obs::Histogram::kNumBuckets);
    EXPECT_LE(obs::Histogram::BucketLowerBound(b), v) << "value " << v;
    if (b + 1 < obs::Histogram::kNumBuckets) {
      EXPECT_GT(obs::Histogram::BucketLowerBound(b + 1), v) << "value " << v;
    }
  }
  for (int b = 1; b < obs::Histogram::kNumBuckets; ++b) {
    EXPECT_GT(obs::Histogram::BucketLowerBound(b),
              obs::Histogram::BucketLowerBound(b - 1));
  }
  // Values beyond the top octave clamp into the last bucket instead of
  // indexing out of range.
  EXPECT_LT(obs::Histogram::BucketIndex(~uint64_t(0)),
            obs::Histogram::kNumBuckets);
}

TEST(MetricsTest, HistogramQuantilesMatchSortedOracle) {
  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  test::SeededRng rng(12021);
  obs::Histogram hist;
  std::vector<uint64_t> values;
  // Log-uniform-ish spread, the shape latencies take: microseconds from
  // sub-bucket-exact single digits up to ~1e6.
  for (int i = 0; i < 20000; ++i) {
    const int octave = static_cast<int>(rng.Uniform(20));
    const uint64_t v = (uint64_t(1) << octave) + rng.Uniform(1u << octave);
    values.push_back(v);
    hist.Record(v);
  }
  EXPECT_EQ(hist.Count(), values.size());
  uint64_t sum = 0;
  for (uint64_t v : values) sum += v;
  EXPECT_EQ(hist.Sum(), sum);

  std::sort(values.begin(), values.end());
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    // Same nearest-rank convention as Histogram::QuantileOf.
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(q * static_cast<double>(values.size()) + 0.5));
    const double oracle = static_cast<double>(values[rank - 1]);
    const double got = hist.Quantile(q);
    // One sub-bucket (1/16 of an octave) bounds the error; allow 8% plus a
    // unit of slack for the exact small-value buckets.
    EXPECT_NEAR(got, oracle, std::max(1.0, oracle * 0.08))
        << "q=" << q << " (" << rng.Desc() << ")";
  }
}

TEST(MetricsTest, HistogramConcurrentRecordsAllCounted) {
  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  obs::Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t * 31 + i % 997));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist.Count(), uint64_t(kThreads) * kPerThread);
  uint64_t expect_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) expect_sum += t * 31 + i % 997;
  }
  EXPECT_EQ(hist.Sum(), expect_sum);
  hist.Reset();
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Sum(), 0u);
}

// ---------------------------------------------------------------------------
// The near-zero-cost contract
// ---------------------------------------------------------------------------

TEST(MetricsTest, RecordingNeverAllocates) {
  ObsGateGuard guard;
  auto* counter = obs::MetricsRegistry::Global().GetCounter("obs_test.zeroalloc");
  auto* gauge = obs::MetricsRegistry::Global().GetGauge("obs_test.zeroalloc_g");
  auto* hist =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.zeroalloc_h");
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(gauge, nullptr);
  ASSERT_NE(hist, nullptr);
  // Warm the thread's sticky shard slot outside the measured window.
  obs::SetMetricsEnabled(true);
  counter->Add();
  hist->Record(1);

  for (bool enabled : {false, true}) {
    obs::SetMetricsEnabled(enabled);
    const size_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
      counter->Add();
      gauge->Set(i);
      hist->Record(static_cast<uint64_t>(i));
    }
    const size_t after = g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u) << "enabled=" << enabled;
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, RegistryReturnsStablePointersAndRejectsKindClash) {
  auto& reg = obs::MetricsRegistry::Global();
  auto* c1 = reg.GetCounter("obs_test.stable");
  auto* c2 = reg.GetCounter("obs_test.stable");
  EXPECT_EQ(c1, c2);
  // Same name, different kind: a naming bug, reported as nullptr.
  EXPECT_EQ(reg.GetHistogram("obs_test.stable"), nullptr);
  EXPECT_EQ(reg.GetGauge("obs_test.stable"), nullptr);
}

TEST(MetricsTest, SnapshotDeltaJSON) {
  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  auto& reg = obs::MetricsRegistry::Global();
  auto* counter = reg.GetCounter("obs_test.delta_counter");
  auto* hist = reg.GetHistogram("obs_test.delta_hist");
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(hist, nullptr);

  const obs::MetricsSnapshot before = reg.Snapshot();
  counter->Add(7);
  for (int i = 0; i < 100; ++i) hist->Record(50);
  const obs::MetricsSnapshot after = reg.Snapshot();

  std::string err;
  const obs::JsonValue delta = obs::JsonValue::Parse(
      obs::MetricsRegistry::DeltaJSON(before, after), &err);
  ASSERT_TRUE(delta.is_object()) << err;
  EXPECT_EQ(delta["counters"]["obs_test.delta_counter"].AsInt(), 7);
  const obs::JsonValue& h = delta["histograms"]["obs_test.delta_hist"];
  EXPECT_EQ(h["count"].AsInt(), 100);
  // All 100 values were 50, so every windowed quantile sits in 50's bucket.
  EXPECT_NEAR(h["p99"].AsDouble(), 50.0, 50.0 * 0.08);

  const obs::JsonValue full = obs::JsonValue::Parse(reg.ToJSON(), &err);
  ASSERT_TRUE(full.is_object()) << err;
  EXPECT_TRUE(full["counters"].Has("obs_test.delta_counter"));
}

TEST(MetricsTest, ExportProvidersAppearInJSON) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.RegisterProvider("obs_test.provider",
                       [] { return std::string("{\"answer\":42}"); });
  std::string err;
  const obs::JsonValue parsed = obs::JsonValue::Parse(reg.ToJSON(), &err);
  ASSERT_TRUE(parsed.is_object()) << err;
  EXPECT_EQ(parsed["exports"]["obs_test.provider"]["answer"].AsInt(), 42);
  reg.UnregisterProvider("obs_test.provider");
  const obs::JsonValue gone = obs::JsonValue::Parse(reg.ToJSON(), &err);
  EXPECT_FALSE(gone["exports"].Has("obs_test.provider"));
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(TraceTest, SpanTreeAttrsAndJSON) {
  obs::QueryTrace trace;
  trace.set_query_label("unit");
  const obs::SpanId root = trace.BeginSpan("root", obs::kNoSpan);
  const obs::SpanId child = trace.BeginSpan("child", root);
  trace.SetAttr(child, "n", int64_t{3});
  trace.SetAttr(child, "ratio", 0.5);
  trace.SetAttr(child, "kind", std::string("demo"));
  trace.EndSpan(child);
  trace.EndSpan(child);  // Idempotent.
  trace.EndSpan(root);
  trace.fetches_total.fetch_add(4);
  trace.fetches_prefetched.fetch_add(3);
  trace.Finish();

  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, obs::kNoSpan);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_GE(spans[1].end_ns, spans[1].start_ns);
  EXPECT_NEAR(trace.PrefetchCoverage(), 0.75, 1e-9);

  std::string err;
  const obs::JsonValue parsed = obs::JsonValue::Parse(trace.ToJSON(), &err);
  ASSERT_TRUE(parsed.is_object()) << err;
  EXPECT_EQ(parsed["query"].AsString(), "unit");
  EXPECT_EQ(parsed["spans"].Items().size(), 2u);
  const obs::JsonValue& c = parsed["spans"].Items()[1];
  EXPECT_EQ(c["name"].AsString(), "child");
  EXPECT_EQ(c["n"].AsInt(), 3);
  EXPECT_EQ(c["kind"].AsString(), "demo");
  EXPECT_EQ(parsed["summary"]["fetches_total"].AsInt(), 4);
}

TEST(TraceTest, ScopedSpanIsNoOpWithoutTrace) {
  obs::ScopedSpan span(obs::TraceCtx{}, "nothing");
  span.SetAttr("k", int64_t{1});  // Must not crash.
  EXPECT_FALSE(static_cast<bool>(span.ctx()));
}

// ---------------------------------------------------------------------------
// Trace completeness over real retrievals
// ---------------------------------------------------------------------------

/// Forwards to a wrapped store, counting the keys every read touches. The
/// completeness test compares this ground truth against the trace's span
/// attributes: if instrumentation missed a read path, the span sum falls
/// short; if a read were double-attributed, it would overshoot.
class CountingKVStore : public KVStore {
 public:
  explicit CountingKVStore(std::unique_ptr<KVStore> base)
      : base_(std::move(base)) {}

  Status Put(const Slice& key, const Slice& value) override {
    return base_->Put(key, value);
  }
  Status Get(const Slice& key, std::string* value) const override {
    keys_read_.fetch_add(1, std::memory_order_relaxed);
    return base_->Get(key, value);
  }
  Status Delete(const Slice& key) override { return base_->Delete(key); }
  Status Write(const WriteBatch& batch) override { return base_->Write(batch); }
  void MultiGet(const std::vector<Slice>& keys, std::vector<std::string>* values,
                std::vector<Status>* statuses) const override {
    keys_read_.fetch_add(keys.size(), std::memory_order_relaxed);
    base_->MultiGet(keys, values, statuses);
  }
  bool Contains(const Slice& key) const override { return base_->Contains(key); }
  void ForEachKey(const Slice& prefix,
                  const std::function<void(const Slice&)>& fn) const override {
    base_->ForEachKey(prefix, fn);
  }
  size_t KeyCount() const override { return base_->KeyCount(); }
  size_t ValueBytes() const override { return base_->ValueBytes(); }
  Status Sync() override { return base_->Sync(); }

  uint64_t keys_read() const {
    return keys_read_.load(std::memory_order_relaxed);
  }
  void ResetCount() { keys_read_.store(0, std::memory_order_relaxed); }

 private:
  std::unique_ptr<KVStore> base_;
  mutable std::atomic<uint64_t> keys_read_{0};
};

std::vector<Event> SmallTrace(uint64_t seed, size_t num_events = 4000) {
  RandomTraceOptions opts;
  opts.num_events = num_events;
  opts.seed = seed;
  return GenerateRandomTrace(opts).events;
}

std::unique_ptr<DeltaGraph> BuildSmallIndex(KVStore* store,
                                            const std::vector<Event>& events) {
  DeltaGraphOptions opts;
  opts.leaf_size = 60;  // Many leaves: plans fetch several deltas/eventlists.
  opts.arity = 3;
  auto dg = DeltaGraph::Create(store, opts);
  EXPECT_TRUE(dg.ok());
  auto index = std::move(dg).value();
  EXPECT_TRUE(index->AppendAll(events).ok());
  EXPECT_TRUE(index->Finalize().ok());
  return index;
}

/// Sums the `kv_keys` attribute over every span, checking each carrying span
/// is one of the two storage-read span kinds.
uint64_t SumSpanKvKeys(const obs::QueryTrace& trace) {
  uint64_t sum = 0;
  for (const auto& span : trace.Spans()) {
    for (const auto& [key, value] : span.attrs) {
      if (key != "kv_keys") continue;
      EXPECT_TRUE(span.name == "fetch.demand" || span.name == "io.drain")
          << "kv_keys attr on unexpected span " << span.name;
      sum += static_cast<uint64_t>(std::get<int64_t>(value));
    }
  }
  return sum;
}

TEST(TraceTest, EveryKvReadLandsInExactlyOneSpan) {
  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  auto store = std::make_unique<CountingKVStore>(NewMemKVStore());
  CountingKVStore* counting = store.get();
  const std::vector<Event> events = SmallTrace(8101);
  auto dg = BuildSmallIndex(store.get(), events);

  const Timestamp lo = events.front().time;
  const Timestamp hi = events.back().time;
  const std::vector<Timestamp> times = {lo + (hi - lo) / 4, lo + (hi - lo) / 2,
                                        hi - (hi - lo) / 4};

  counting->ResetCount();
  obs::QueryTrace trace;
  auto result = dg->GetSnapshots(times, kCompAll,
                                 obs::TraceCtx{&trace, obs::kNoSpan});
  ASSERT_TRUE(result.ok());
  trace.Finish();

  const uint64_t ground_truth = counting->keys_read();
  ASSERT_GT(ground_truth, 0u) << "query never touched storage; test is vacuous";
  // Span attribution, the query-wide tally, and the store's own count must
  // all agree: every key read during the query is in exactly one span.
  EXPECT_EQ(SumSpanKvKeys(trace), ground_truth);
  EXPECT_EQ(trace.kv_reads.load(), ground_truth);
  EXPECT_GT(trace.bytes_read.load(), 0u);
  EXPECT_EQ(trace.fetches_total.load(),
            trace.fetches_prefetched.load() + trace.fetches_demand.load());

  // A second identical query is served by the decoded LRU: no storage reads,
  // and the trace says so too.
  counting->ResetCount();
  obs::QueryTrace warm;
  ASSERT_TRUE(
      dg->GetSnapshots(times, kCompAll, obs::TraceCtx{&warm, obs::kNoSpan}).ok());
  warm.Finish();
  EXPECT_EQ(counting->keys_read(), 0u);
  EXPECT_EQ(SumSpanKvKeys(warm), 0u);
  EXPECT_EQ(warm.kv_reads.load(), 0u);
  EXPECT_GT(warm.lru_hits.load(), 0u);
}

TEST(TraceTest, PrefetchCoverageIsFullOnPrefetchedPinnedPlan) {
  ObsGateGuard guard;
  auto store = NewMemKVStore();
  const std::vector<Event> events = SmallTrace(4242);
  auto dg = BuildSmallIndex(store.get(), events);

  const Timestamp lo = events.front().time;
  const Timestamp hi = events.back().time;
  const std::vector<Timestamp> times = {lo + (hi - lo) / 3, hi - (hi - lo) / 5};
  auto plan = dg->PlanFor(times, kCompAll);
  ASSERT_TRUE(plan.ok());
  const std::vector<PlanFetch> fetches = CollectPlanFetches(plan.value());
  ASSERT_GE(fetches.size(), 2u) << "plan too small to exercise prefetch";

  IoPool io(2);
  obs::QueryTrace trace;
  const obs::TraceCtx tc{&trace, obs::kNoSpan};
  {
    // Prefetch the whole plan and wait for it to land before executing: every
    // fetch the visitor performs is then served by the prefetched pin, so
    // coverage is exactly 1.0 (no scheduling race to tolerate).
    ExecFetchCache cache;
    cache.SetTrace(tc);
    StartCollectedPrefetch(*dg, dg->skeleton(), fetches, kCompAll, &cache, &io);
    cache.WaitPrefetchesIdle();
    auto results = dg->ExecutePlanPinned(plan.value(), kCompAll, &cache, tc);
    ASSERT_TRUE(results.ok());
  }
  trace.Finish();

  EXPECT_EQ(trace.fetches_total.load(), fetches.size());
  EXPECT_EQ(trace.fetches_demand.load(), 0u);
  EXPECT_EQ(trace.fetches_prefetched.load(), fetches.size());
  EXPECT_DOUBLE_EQ(trace.PrefetchCoverage(), 1.0);
  EXPECT_EQ(trace.prefetch_issued.load(), fetches.size());
}

TEST(TraceTest, SessionLastTraceCarriesRequestSpans) {
  ObsGateGuard guard;
  obs::SetTraceEnabled(true);
  auto store = NewMemKVStore();
  const std::vector<Event> events = SmallTrace(97, 3000);
  auto dg = BuildSmallIndex(store.get(), events);

  const Timestamp lo = events.front().time;
  const Timestamp hi = events.back().time;
  RetrievalSession session(dg.get());
  auto* a = session.Submit({lo + (hi - lo) / 2});
  auto* b = session.Submit({lo + (hi - lo) / 3, hi - (hi - lo) / 3});
  ASSERT_TRUE(session.Wait().ok());
  ASSERT_TRUE(a->result.ok());
  ASSERT_TRUE(b->result.ok());

  const obs::QueryTrace* trace = session.LastTrace();
  ASSERT_NE(trace, nullptr);
  size_t request_spans = 0;
  bool saw_execute = false;
  for (const auto& span : trace->Spans()) {
    if (span.name == "request") {
      ++request_spans;
      EXPECT_GE(span.end_ns, span.start_ns) << "request span left open";
    }
    if (span.name.rfind("execute.", 0) == 0) saw_execute = true;
  }
  EXPECT_EQ(request_spans, 2u);
  EXPECT_TRUE(saw_execute);

  std::string err;
  EXPECT_TRUE(obs::JsonValue::Parse(trace->ToJSON(), &err).is_object()) << err;
}

TEST(TraceTest, DisabledTraceMeansNullLastTrace) {
  ObsGateGuard guard;
  obs::SetTraceEnabled(false);
  auto store = NewMemKVStore();
  const std::vector<Event> events = SmallTrace(55, 2000);
  auto dg = BuildSmallIndex(store.get(), events);
  RetrievalSession session(dg.get());
  session.Submit({events.back().time});
  ASSERT_TRUE(session.Wait().ok());
  EXPECT_EQ(session.LastTrace(), nullptr);
}

// ---------------------------------------------------------------------------
// Metric folding in the index layers
// ---------------------------------------------------------------------------

TEST(ObsIntegrationTest, FetchFrequencyTracksHotDeltas) {
  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  auto store = NewMemKVStore();
  const std::vector<Event> events = SmallTrace(31337);
  auto dg = BuildSmallIndex(store.get(), events);

  const Timestamp lo = events.front().time;
  const Timestamp hi = events.back().time;
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(dg->GetSnapshot(lo + (hi - lo) * i / 5, kCompAll).ok());
  }
  const FetchFrequency& freq = dg->delta_store().fetch_frequency();
  uint64_t total = 0;
  for (size_t id = 0; id < freq.size(); ++id) total += freq.Count(id);
  EXPECT_GT(total, 0u);

  std::string err;
  const obs::JsonValue top = obs::JsonValue::Parse(freq.TopKJSON(8), &err);
  ASSERT_TRUE(top.is_array()) << err;
  ASSERT_FALSE(top.Items().empty());
  // Sorted by count descending, counts match the table.
  int64_t prev = top.Items()[0]["fetches"].AsInt();
  for (const obs::JsonValue& entry : top.Items()) {
    const int64_t count = entry["fetches"].AsInt();
    EXPECT_LE(count, prev);
    prev = count;
    EXPECT_EQ(static_cast<uint32_t>(count),
              freq.Count(static_cast<DeltaId>(entry["id"].AsInt())));
  }
}

TEST(ObsIntegrationTest, DeltaGraphMetricsExportRegistersAndUnregisters) {
  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  std::string err;
  {
    auto store = NewMemKVStore();
    const std::vector<Event> events = SmallTrace(777, 2000);
    auto dg = BuildSmallIndex(store.get(), events);
    dg->RegisterMetricsExports("obs_test_index");
    ASSERT_TRUE(dg->GetSnapshot(events.back().time, kCompAll).ok());

    const obs::JsonValue parsed =
        obs::JsonValue::Parse(obs::MetricsRegistry::Global().ToJSON(), &err);
    ASSERT_TRUE(parsed.is_object()) << err;
    const obs::JsonValue& exp = parsed["exports"]["deltagraph.obs_test_index"];
    ASSERT_TRUE(exp.is_object());
    EXPECT_EQ(exp["stats"]["leaf_count"].AsInt(),
              static_cast<int64_t>(dg->Stats().leaf_count));
    EXPECT_TRUE(exp["fetch_freq_top"].is_array());
  }
  // The index's destructor unregistered its provider.
  const obs::JsonValue after =
      obs::JsonValue::Parse(obs::MetricsRegistry::Global().ToJSON(), &err);
  EXPECT_FALSE(after["exports"].Has("deltagraph.obs_test_index"));
}

TEST(ObsIntegrationTest, PartitionedStatsAggregateAcrossShards) {
  auto base = NewMemKVStore();
  auto pdg = PartitionedDeltaGraph::Create(base.get(), 3, [] {
    DeltaGraphOptions opts;
    opts.leaf_size = 50;
    opts.arity = 3;
    return opts;
  }());
  ASSERT_TRUE(pdg.ok());
  auto& index = *pdg.value();
  const std::vector<Event> events = SmallTrace(2026, 3000);
  ASSERT_TRUE(index.AppendAll(events).ok());
  ASSERT_TRUE(index.Finalize().ok());

  const DeltaGraphStats agg = index.Stats();
  DeltaGraphStats manual;
  for (size_t i = 0; i < index.partition_count(); ++i) {
    const DeltaGraphStats s = index.partition(i)->Stats();
    manual.leaf_count += s.leaf_count;
    manual.node_count += s.node_count;
    manual.edge_count += s.edge_count;
    manual.delta_bytes += s.delta_bytes;
    manual.eventlist_bytes += s.eventlist_bytes;
    manual.store_bytes += s.store_bytes;
    manual.materialized_bytes += s.materialized_bytes;
    manual.materialized_nodes += s.materialized_nodes;
    manual.height = std::max(manual.height, s.height);
  }
  EXPECT_EQ(agg.leaf_count, manual.leaf_count);
  EXPECT_EQ(agg.node_count, manual.node_count);
  EXPECT_EQ(agg.edge_count, manual.edge_count);
  EXPECT_EQ(agg.delta_bytes, manual.delta_bytes);
  EXPECT_EQ(agg.eventlist_bytes, manual.eventlist_bytes);
  EXPECT_EQ(agg.height, manual.height);
  EXPECT_GT(agg.leaf_count, 0u);
}

// ---------------------------------------------------------------------------
// Histogram edge cases: the exact/log-linear seam and the overflow clamp
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramExactLogLinearSeamAndOverflow) {
  // Values below 32 map to identity buckets with exact bounds.
  for (uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(obs::Histogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(obs::Histogram::BucketLowerBound(static_cast<int>(v)), v);
  }
  // 32 is the first log-linear bucket; its lower bound is exactly 32, so the
  // seam has no gap and no overlap with exact bucket 31.
  EXPECT_EQ(obs::Histogram::BucketIndex(32), 32);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(32), 32u);

  // Every octave starts a fresh run of 16 sub-buckets whose first lower
  // bound is exactly the octave's power of two.
  for (int octave = obs::Histogram::kMinOctave;
       octave <= obs::Histogram::kMaxOctave; ++octave) {
    const uint64_t base = uint64_t(1) << octave;
    const int idx = obs::Histogram::BucketIndex(base);
    EXPECT_EQ(idx, 32 + (octave - obs::Histogram::kMinOctave) *
                            obs::Histogram::kSubBuckets)
        << "octave " << octave;
    EXPECT_EQ(obs::Histogram::BucketLowerBound(idx), base);
    // The last value of the previous octave stays in the previous octave.
    EXPECT_EQ(obs::Histogram::BucketIndex(base - 1), idx - 1);
  }

  // Values at/above 2^40 clamp into the top bucket instead of indexing out
  // of range, and a histogram of such values reports a top-bucket quantile.
  const int top = obs::Histogram::kNumBuckets - 1;
  EXPECT_EQ(obs::Histogram::BucketIndex(uint64_t(1) << 40), top);
  EXPECT_EQ(obs::Histogram::BucketIndex(~uint64_t(0)), top);

  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  obs::Histogram hist;
  hist.Record(~uint64_t(0));
  hist.Record(uint64_t(1) << 45);
  EXPECT_EQ(hist.Count(), 2u);
  EXPECT_GE(hist.Quantile(0.99), double(uint64_t(1) << 39));
}

TEST(MetricsTest, DeltaJSONGaugeReportsAfterLevel) {
  // Gauges are levels, not rates: a snapshot delta pins the *after* level
  // verbatim rather than reporting after - before (a lag gauge that went
  // from 500us down to 20us must show 20, not -480).
  ObsGateGuard guard;
  obs::SetMetricsEnabled(true);
  auto& reg = obs::MetricsRegistry::Global();
  auto* gauge = reg.GetGauge("obs_test.delta_gauge");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(500);
  const obs::MetricsSnapshot before = reg.Snapshot();
  gauge->Set(20);
  const obs::MetricsSnapshot after = reg.Snapshot();
  std::string err;
  const obs::JsonValue delta =
      obs::JsonValue::Parse(obs::MetricsRegistry::DeltaJSON(before, after), &err);
  ASSERT_TRUE(delta.is_object()) << err;
  EXPECT_EQ(delta["gauges"]["obs_test.delta_gauge"].AsInt(), 20);
}

// ---------------------------------------------------------------------------
// Trace sampler: deterministic 1-in-N plus tail arming
// ---------------------------------------------------------------------------

TEST(SamplerTest, OneInNIsDeterministicOffSharedCounter) {
  obs::TraceSampler sampler;
  sampler.Configure(/*every_n=*/4, /*arm_threshold_us=*/0);
  int yes = 0;
  std::vector<bool> decisions;
  for (int i = 0; i < 16; ++i) {
    decisions.push_back(sampler.Sample());
    if (decisions.back()) ++yes;
  }
  EXPECT_EQ(yes, 4);  // Exactly 1 in 4, not probabilistically.
  EXPECT_TRUE(decisions[0]);  // Counter starts at 0 → first query sampled.
  EXPECT_EQ(sampler.sampled(), 4u);

  sampler.Configure(/*every_n=*/1, /*arm_threshold_us=*/0);
  EXPECT_TRUE(sampler.Sample());  // N = 1 traces everything.
}

TEST(SamplerTest, DisabledSamplerNeitherSamplesNorAdvances) {
  obs::TraceSampler sampler;
  sampler.Configure(/*every_n=*/2, /*arm_threshold_us=*/0);
  EXPECT_TRUE(sampler.Sample());  // Counter 0 → sampled.
  sampler.Configure(/*every_n=*/0, /*arm_threshold_us=*/0);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(sampler.Sample());
  // N = 0 short-circuits before touching the counter, so re-enabling
  // continues the old cadence: counter is at 1, so the next yes is one
  // query away.
  sampler.Configure(/*every_n=*/2, /*arm_threshold_us=*/0);
  EXPECT_FALSE(sampler.Sample());
  EXPECT_TRUE(sampler.Sample());
  EXPECT_EQ(sampler.sampled(), 2u);
}

TEST(SamplerTest, TailArmingForcesNextBudgetQueries) {
  obs::TraceSampler sampler;
  sampler.Configure(/*every_n=*/0, /*arm_threshold_us=*/100, /*arm_budget=*/3);
  EXPECT_FALSE(sampler.Sample());  // Sampling off, nothing armed.

  sampler.Observe(99);  // Below threshold: no arming.
  EXPECT_EQ(sampler.slow_observed(), 0u);
  EXPECT_FALSE(sampler.Sample());

  sampler.Observe(100);  // At threshold: arms the next 3 queries.
  EXPECT_EQ(sampler.slow_observed(), 1u);
  EXPECT_EQ(sampler.armed_remaining(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(sampler.Sample()) << "armed query " << i;
  }
  EXPECT_FALSE(sampler.Sample());  // Budget spent.
  EXPECT_EQ(sampler.armed_remaining(), 0u);
  EXPECT_EQ(sampler.sampled(), 3u);

  // A fresh slow observation re-arms the full budget.
  sampler.Observe(5000);
  EXPECT_EQ(sampler.armed_remaining(), 3u);

  sampler.ResetCounters();
  EXPECT_EQ(sampler.sampled(), 0u);
  EXPECT_EQ(sampler.slow_observed(), 0u);
  EXPECT_EQ(sampler.armed_remaining(), 0u);
}

// ---------------------------------------------------------------------------
// Flight recorder: retention, slow routing, and the batched span-attr write
// ---------------------------------------------------------------------------

TEST(TraceTest, SetAttrsAppendsWholeBatchUnderOneLock) {
  obs::QueryTrace trace;
  const obs::SpanId span = trace.BeginSpan("fetch.demand", obs::kNoSpan);
  trace.SetAttrs(span, {{"edge", int64_t{7}},
                        {"kind", std::string("delta")},
                        {"bytes", int64_t{512}},
                        {"ratio", 0.25}});
  trace.SetAttrs(obs::SpanId{99}, {{"ignored", int64_t{1}}});  // Bad id: no-op.
  trace.EndSpan(span);
  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 4u);
  EXPECT_EQ(spans[0].attrs[0].first, "edge");
  EXPECT_EQ(std::get<int64_t>(spans[0].attrs[0].second), 7);
  EXPECT_EQ(std::get<std::string>(spans[0].attrs[1].second), "delta");
  EXPECT_EQ(std::get<double>(spans[0].attrs[3].second), 0.25);

  obs::ScopedSpan no_trace(obs::TraceCtx{}, "nothing");
  no_trace.SetAttrs({{"k", int64_t{1}}});  // Must not crash.
}

TEST(FlightRecorderTest, RecentRingTrimsAndSlowLogRetains) {
  obs::FlightRecorder recorder;
  recorder.Configure(/*recent_capacity=*/4, /*slow_capacity=*/2,
                     /*slow_threshold_us=*/0);
  // Six fast traces cycle the recent ring; only the last four survive.
  for (int i = 0; i < 6; ++i) {
    obs::QueryTrace trace;
    trace.set_query_label("q" + std::to_string(i));
    trace.Finish();
    recorder.Record(trace);
  }
  auto recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent.front().label, "q2");
  EXPECT_EQ(recent.back().label, "q5");
  EXPECT_EQ(recorder.recorded(), 6u);
  EXPECT_EQ(recorder.slow_recorded(), 0u);
  EXPECT_TRUE(recorder.Slow().empty());

  // Event-carrying traces route to the slow log regardless of latency; the
  // slow log keeps its own capacity and survives recent-ring churn.
  for (int i = 0; i < 3; ++i) {
    obs::QueryTrace trace;
    trace.set_query_label("slow" + std::to_string(i));
    trace.set_event("deadline");
    trace.Finish();
    recorder.Record(trace);
  }
  for (int i = 0; i < 8; ++i) {  // Churn the recent ring past the slow ones.
    obs::QueryTrace trace;
    trace.set_query_label("churn");
    trace.Finish();
    recorder.Record(trace);
  }
  auto slow = recorder.Slow();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].label, "slow1");
  EXPECT_EQ(slow[1].label, "slow2");
  EXPECT_EQ(slow[0].event, "deadline");
  EXPECT_EQ(recorder.slow_recorded(), 3u);

  // Sequence numbers are process-order monotone across both logs.
  recent = recorder.Recent();
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_GT(recent[i].seq, recent[i - 1].seq);
  }

  recorder.Clear();
  EXPECT_TRUE(recorder.Recent().empty());
  EXPECT_TRUE(recorder.Slow().empty());
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(FlightRecorderTest, RecordPreservesIdentityAndSpanTree) {
  obs::FlightRecorder recorder;
  recorder.Configure(8, 8, /*slow_threshold_us=*/0);

  obs::QueryTrace trace;
  trace.set_query_label("tail_query");
  trace.set_epoch(42);
  trace.set_event_count(31337);
  trace.set_shard_skew(1.75);
  trace.set_event("slow");
  const obs::SpanId root = trace.BeginSpan("query", obs::kNoSpan);
  const obs::SpanId child = trace.BeginSpan("fetch.demand", root);
  trace.SetAttrs(child, {{"kv_keys", int64_t{3}}});
  trace.fetches_total.fetch_add(4);
  trace.fetches_prefetched.fetch_add(2);
  trace.kv_reads.fetch_add(3);
  trace.bytes_read.fetch_add(2048);
  trace.EndSpan(child);
  trace.EndSpan(root);
  trace.Finish();
  recorder.Record(trace);

  auto slow = recorder.Slow();
  ASSERT_EQ(slow.size(), 1u);  // The "slow" event routed it.
  const obs::FlightEntry& e = slow[0];
  EXPECT_EQ(e.label, "tail_query");
  EXPECT_EQ(e.epoch, 42u);
  EXPECT_EQ(e.event_count, 31337u);
  EXPECT_DOUBLE_EQ(e.shard_skew, 1.75);
  EXPECT_DOUBLE_EQ(e.prefetch_coverage, 0.5);
  EXPECT_EQ(e.fetches_total, 4u);
  EXPECT_EQ(e.kv_reads, 3u);
  EXPECT_EQ(e.bytes_read, 2048u);
  EXPECT_TRUE(e.has_trace);
  ASSERT_EQ(e.spans.size(), 2u);
  EXPECT_EQ(e.spans[1].name, "fetch.demand");

  // The lazily rendered JSON carries the span tree and identity fields.
  std::string err;
  const obs::JsonValue parsed = obs::JsonValue::Parse(e.ToJSON(), &err);
  ASSERT_TRUE(parsed.is_object()) << err;
  EXPECT_EQ(parsed["epoch"].AsInt(), 42);
  EXPECT_EQ(parsed["event_count"].AsInt(), 31337);
  EXPECT_EQ(parsed["event"].AsString(), "slow");
  EXPECT_EQ(parsed["spans"].Items().size(), 2u);
  const obs::JsonValue whole = obs::JsonValue::Parse(recorder.ToJSON(), &err);
  ASSERT_TRUE(whole.is_object()) << err;
  EXPECT_EQ(whole["slow"].Items().size(), 1u);
  EXPECT_EQ(whole["recent"].Items().size(), 1u);
}

TEST(FlightRecorderTest, ConcurrentRecordsAllCounted) {
  // Run under TSan in CI: 8 threads push traced and event entries through
  // the one push mutex; counters stay exact and capacities hold.
  obs::FlightRecorder recorder;
  recorder.Configure(/*recent_capacity=*/64, /*slow_capacity=*/16,
                     /*slow_threshold_us=*/0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 4 == 0) {
          recorder.RecordEvent("evt", "deadline", 1000.0, /*epoch=*/t,
                               /*event_count=*/i);
        } else {
          obs::QueryTrace trace;
          const obs::SpanId s = trace.BeginSpan("query", obs::kNoSpan);
          trace.EndSpan(s);
          trace.Finish();
          recorder.Record(trace);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(recorder.recorded(), uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(recorder.slow_recorded(), uint64_t(kThreads) * kPerThread / 4);
  EXPECT_EQ(recorder.Recent().size(), 64u);
  EXPECT_EQ(recorder.Slow().size(), 16u);
  // Within each log every retained seq is unique (a slow entry carries the
  // same seq in both logs — it is one record, retained twice).
  for (const auto& entries : {recorder.Recent(), recorder.Slow()}) {
    std::vector<uint64_t> seqs;
    for (const auto& e : entries) seqs.push_back(e.seq);
    std::sort(seqs.begin(), seqs.end());
    EXPECT_EQ(std::adjacent_find(seqs.begin(), seqs.end()), seqs.end());
  }
}

// ---------------------------------------------------------------------------
// Concurrent trace dumping: whole lines, never interleaved
// ---------------------------------------------------------------------------

TEST(TraceTest, ConcurrentDumpsEmitWholeJSONLines) {
  // HISTGRAPH_TRACE_OUT emission is serialized under a process-wide mutex;
  // with 8 sessions finishing at once every line in the file must still
  // parse as one complete JSON object.
  ObsGateGuard guard;
  const std::string path = ::testing::TempDir() + "/hgdb_trace_dump_test.jsonl";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("HISTGRAPH_TRACE", "1", 1), 0);
  ASSERT_EQ(setenv("HISTGRAPH_TRACE_OUT", path.c_str(), 1), 0);

  constexpr int kThreads = 8;
  constexpr int kTracesPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kTracesPerThread; ++i) {
        obs::QueryTrace trace;
        trace.set_query_label("dump_t" + std::to_string(t));
        // A multi-KB line: enough spans that an unserialized write would
        // visibly interleave.
        obs::SpanId parent = obs::kNoSpan;
        for (int s = 0; s < 40; ++s) {
          const obs::SpanId id = trace.BeginSpan("span" + std::to_string(s),
                                                 parent);
          trace.SetAttrs(id, {{"i", int64_t{i}}, {"s", int64_t{s}}});
          parent = id;
        }
        obs::FinishAndMaybeDump(&trace);
      }
    });
  }
  for (auto& th : threads) th.join();
  unsetenv("HISTGRAPH_TRACE");
  unsetenv("HISTGRAPH_TRACE_OUT");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string err;
    const obs::JsonValue parsed = obs::JsonValue::Parse(line, &err);
    ASSERT_TRUE(parsed.is_object())
        << "line " << lines << " is not whole JSON: " << err;
    EXPECT_EQ(parsed["spans"].Items().size(), 40u);
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kTracesPerThread);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hgdb
