#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_set>

#include "deltagraph/delta_graph.h"
#include "deltagraph/differential.h"
#include "deltagraph/partitioned_delta_graph.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

// ---------------------------------------------------------------------------
// Differential functions
// ---------------------------------------------------------------------------

Snapshot MakeSnap(std::initializer_list<NodeId> nodes) {
  Snapshot s;
  for (NodeId n : nodes) s.AddNode(n);
  return s;
}

TEST(DifferentialTest, IntersectionKeepsCommonElements) {
  Snapshot a = MakeSnap({1, 2, 3});
  Snapshot b = MakeSnap({2, 3, 4});
  Snapshot c = MakeSnap({3, 4, 5});
  auto fn = MakeIntersectionFunction();
  Snapshot p = fn->Combine({&a, &b, &c});
  EXPECT_EQ(p.NodeCount(), 1u);
  EXPECT_TRUE(p.HasNode(3));
}

TEST(DifferentialTest, IntersectionIsValueSensitiveForAttrs) {
  Snapshot a = MakeSnap({1});
  a.SetNodeAttr(1, "k", "x");
  Snapshot b = MakeSnap({1});
  b.SetNodeAttr(1, "k", "y");
  auto fn = MakeIntersectionFunction();
  Snapshot p = fn->Combine({&a, &b});
  EXPECT_TRUE(p.HasNode(1));
  EXPECT_EQ(p.GetNodeAttr(1, "k"), nullptr);  // Different values: not common.
}

TEST(DifferentialTest, UnionContainsEverything) {
  Snapshot a = MakeSnap({1, 2});
  Snapshot b = MakeSnap({3});
  b.AddEdge(9, EdgeRecord{1, 3, false});
  auto fn = MakeUnionFunction();
  Snapshot p = fn->Combine({&a, &b});
  EXPECT_EQ(p.NodeCount(), 3u);
  EXPECT_TRUE(p.HasEdge(9));
}

TEST(DifferentialTest, EmptyFunctionYieldsEmpty) {
  Snapshot a = MakeSnap({1, 2, 3});
  auto fn = MakeEmptyFunction();
  EXPECT_TRUE(fn->Combine({&a, &a}).Empty());
}

TEST(DifferentialTest, SkewedExtremes) {
  Snapshot a = MakeSnap({1, 2, 3});
  Snapshot b = MakeSnap({3, 4});
  EXPECT_TRUE(MakeSkewedFunction(0.0)->Combine({&a, &b}).Equals(a));
  EXPECT_TRUE(MakeSkewedFunction(1.0)->Combine({&a, &b}).Equals(b));
}

TEST(DifferentialTest, MixedExtremes) {
  Snapshot a = MakeSnap({1, 2, 3});
  Snapshot b = MakeSnap({3, 4});
  // r1=r2=1: a + all additions - all removals = b.
  EXPECT_TRUE(MakeMixedFunction(1.0, 1.0)->Combine({&a, &b}).Equals(b));
  // r1=r2=0: parent = a.
  EXPECT_TRUE(MakeMixedFunction(0.0, 0.0)->Combine({&a, &b}).Equals(a));
}

TEST(DifferentialTest, BalancedRoughlyHalvesDeltas) {
  // Large disjoint change: balanced parent should sit about halfway.
  Snapshot a, b;
  for (NodeId n = 0; n < 2000; ++n) a.AddNode(n);
  for (NodeId n = 1000; n < 3000; ++n) b.AddNode(n);
  auto fn = MakeBalancedFunction();
  Snapshot p = fn->Combine({&a, &b});
  const size_t da = Delta::Between(a, p).ElementCount();
  const size_t db = Delta::Between(b, p).ElementCount();
  // |delta(a,p)| and |delta(b,p)| should be close to each other.
  EXPECT_LT(static_cast<double>(da > db ? da - db : db - da), 0.2 * (da + db));
}

TEST(DifferentialTest, RightSkewedIsIntersectionPlusFractionOfNew) {
  Snapshot a = MakeSnap({1, 2, 3});
  Snapshot b = MakeSnap({2, 3, 4, 5});
  Snapshot p0 = MakeRightSkewedFunction(0.0)->Combine({&a, &b});
  EXPECT_EQ(p0.NodeCount(), 2u);  // a ∩ b
  Snapshot p1 = MakeRightSkewedFunction(1.0)->Combine({&a, &b});
  EXPECT_TRUE(p1.Equals(b));  // a∩b + (b − a∩b) = b
  Snapshot l1 = MakeLeftSkewedFunction(1.0)->Combine({&a, &b});
  EXPECT_TRUE(l1.Equals(a));
}

TEST(DifferentialTest, FactoryParsesSpecs) {
  for (const char* spec :
       {"intersection", "union", "empty", "balanced", "mixed:0.7:0.3",
        "skewed:0.25", "rightskewed:0.5", "leftskewed:0.5"}) {
    auto fn = MakeDifferentialFunction(spec);
    ASSERT_TRUE(fn.ok()) << spec;
  }
  EXPECT_FALSE(MakeDifferentialFunction("bogus").ok());
  EXPECT_FALSE(MakeDifferentialFunction("mixed:0.3:0.7").ok());  // r2 > r1.
  EXPECT_FALSE(MakeDifferentialFunction("mixed:abc:0.1").ok());
}

TEST(DifferentialTest, SelectionIsDeterministic) {
  Snapshot a = MakeSnap({1, 2, 3, 4, 5, 6, 7, 8});
  Snapshot b = MakeSnap({5, 6, 7, 8, 9, 10, 11, 12});
  auto fn = MakeBalancedFunction();
  Snapshot p1 = fn->Combine({&a, &b});
  Snapshot p2 = fn->Combine({&a, &b});
  EXPECT_TRUE(p1.Equals(p2));
}

// ---------------------------------------------------------------------------
// Skeleton
// ---------------------------------------------------------------------------

TEST(SkeletonTest, LeafIntervalSearch) {
  Skeleton s;
  SkeletonNode sr;
  sr.is_super_root = true;
  s.SetSuperRoot(s.AddNode(sr));
  std::vector<int32_t> leaves;
  for (Timestamp t : {0, 10, 20, 30}) {
    SkeletonNode leaf;
    leaf.is_leaf = true;
    leaf.level = 1;
    leaf.boundary_time = t;
    leaves.push_back(s.AddNode(leaf));
  }
  EXPECT_EQ(s.FindLeafInterval(0), -1);   // t <= first boundary.
  EXPECT_EQ(s.FindLeafInterval(-5), -1);
  EXPECT_EQ(s.FindLeafInterval(1), 0);    // (0, 10]
  EXPECT_EQ(s.FindLeafInterval(10), 0);
  EXPECT_EQ(s.FindLeafInterval(11), 1);
  EXPECT_EQ(s.FindLeafInterval(30), 2);
  EXPECT_EQ(s.FindLeafInterval(99), 3);   // Beyond the last boundary.
}

TEST(SkeletonTest, SerializationRoundTrip) {
  Skeleton s;
  SkeletonNode sr;
  sr.is_super_root = true;
  s.SetSuperRoot(s.AddNode(sr));
  SkeletonNode leaf;
  leaf.is_leaf = true;
  leaf.level = 1;
  leaf.boundary_time = 42;
  leaf.element_count = 17;
  const int32_t l1 = s.AddNode(leaf);
  leaf.boundary_time = 84;
  const int32_t l2 = s.AddNode(leaf);
  SkeletonEdge e;
  e.from = l1;
  e.to = l2;
  e.is_eventlist = true;
  e.delta_id = 7;
  e.sizes.bytes[0] = 100;
  e.sizes.elements[0] = 10;
  const int32_t eid = s.AddEdge(e);
  SkeletonEdge d;
  d.from = s.super_root();
  d.to = l1;
  d.delta_id = 8;
  const int32_t did = s.AddEdge(d);
  s.RemoveEdge(did);

  std::string blob;
  s.EncodeTo(&blob);
  Skeleton back;
  ASSERT_TRUE(Skeleton::DecodeFrom(blob, &back).ok());
  EXPECT_EQ(back.node_count(), 3u);
  EXPECT_EQ(back.edge_count(), 2u);
  EXPECT_EQ(back.super_root(), s.super_root());
  EXPECT_EQ(back.leaves().size(), 2u);
  EXPECT_TRUE(back.edge(did).deleted);
  EXPECT_EQ(back.edge(eid).sizes.bytes[0], 100u);
  EXPECT_EQ(back.node(l1).boundary_time, 42);
  EXPECT_EQ(back.node(l1).element_count, 17u);
  // Corruption detection.
  std::string bad = blob.substr(0, blob.size() / 2);
  Skeleton reject;
  EXPECT_FALSE(Skeleton::DecodeFrom(bad, &reject).ok());
}

// ---------------------------------------------------------------------------
// DeltaGraph ground truth: every configuration must reproduce exact replay.
// ---------------------------------------------------------------------------

struct DgConfig {
  std::string function;
  int arity;
  size_t leaf_size;
};

std::string ConfigName(const ::testing::TestParamInfo<DgConfig>& info) {
  std::string name = info.param.function + "_k" + std::to_string(info.param.arity) +
                     "_L" + std::to_string(info.param.leaf_size);
  for (auto& c : name) {
    if (c == ':' || c == '.') c = '_';
  }
  return name;
}

class DeltaGraphGroundTruthTest : public ::testing::TestWithParam<DgConfig> {
 protected:
  void BuildIndex(const std::vector<Event>& events) {
    store_ = NewMemKVStore();
    DeltaGraphOptions opts;
    opts.leaf_size = GetParam().leaf_size;
    opts.arity = GetParam().arity;
    opts.functions = {GetParam().function};
    auto dg = DeltaGraph::Create(store_.get(), opts);
    ASSERT_TRUE(dg.ok()) << dg.status().ToString();
    dg_ = std::move(dg).value();
    ASSERT_TRUE(dg_->AppendAll(events).ok());
    ASSERT_TRUE(dg_->Finalize().ok());
  }

  std::unique_ptr<KVStore> store_;
  std::unique_ptr<DeltaGraph> dg_;
};

TEST_P(DeltaGraphGroundTruthTest, SinglepointMatchesReplayEverywhere) {
  RandomTraceOptions opts;
  opts.num_events = 6000;
  opts.seed = 424242;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  BuildIndex(trace.events);

  const Timestamp t_min = trace.events.front().time;
  const Timestamp t_max = trace.events.back().time;
  // Probe uniformly, plus edge cases: before first event, exactly at leaf
  // boundaries, beyond the end.
  std::vector<Timestamp> probes = {t_min - 10, t_min, t_max, t_max + 100};
  for (int i = 1; i <= 20; ++i) {
    probes.push_back(t_min + (t_max - t_min) * i / 21);
  }
  for (int32_t leaf : dg_->skeleton().leaves()) {
    probes.push_back(dg_->skeleton().node(leaf).boundary_time);
  }
  for (Timestamp t : probes) {
    auto snap = dg_->GetSnapshot(t);
    ASSERT_TRUE(snap.ok()) << "t=" << t << ": " << snap.status().ToString();
    Snapshot expected = ReplayAt(trace.events, t);
    EXPECT_TRUE(snap.value().Equals(expected))
        << "t=" << t << "\n" << snap.value().DiffString(expected);
  }
}

TEST_P(DeltaGraphGroundTruthTest, ComponentFilteredRetrievalMatchesFilteredReplay) {
  RandomTraceOptions opts;
  opts.num_events = 4000;
  opts.seed = 777;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  BuildIndex(trace.events);

  const Timestamp t_max = trace.events.back().time;
  const unsigned component_sets[] = {kCompStruct, kCompStruct | kCompNodeAttr,
                                     kCompStruct | kCompEdgeAttr, kCompAll};
  for (unsigned components : component_sets) {
    for (int i = 1; i <= 5; ++i) {
      const Timestamp t = t_max * i / 6;
      auto snap = dg_->GetSnapshot(t, components);
      ASSERT_TRUE(snap.ok()) << snap.status().ToString();
      Snapshot expected = ReplayAt(trace.events, t, components);
      EXPECT_TRUE(snap.value().Equals(expected))
          << "components=" << components << " t=" << t << "\n"
          << snap.value().DiffString(expected);
    }
  }
}

TEST_P(DeltaGraphGroundTruthTest, MultipointMatchesSinglepoint) {
  RandomTraceOptions opts;
  opts.num_events = 5000;
  opts.seed = 31337;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  BuildIndex(trace.events);

  const Timestamp t_max = trace.events.back().time;
  std::vector<Timestamp> times;
  for (int i = 1; i <= 12; ++i) times.push_back(t_max * i / 13);
  times.push_back(times[3]);  // Duplicate time point.

  auto multi = dg_->GetSnapshots(times);
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  ASSERT_EQ(multi.value().size(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    Snapshot expected = ReplayAt(trace.events, times[i]);
    EXPECT_TRUE(multi.value()[i].Equals(expected))
        << "t=" << times[i] << "\n" << multi.value()[i].DiffString(expected);
  }
}

TEST_P(DeltaGraphGroundTruthTest, MaterializationPreservesCorrectness) {
  RandomTraceOptions opts;
  opts.num_events = 4000;
  opts.seed = 11;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  BuildIndex(trace.events);

  auto mat = dg_->MaterializeDepth(0);  // Root(s).
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  EXPECT_GE(mat.value(), 1u);

  const Timestamp t_max = trace.events.back().time;
  for (int i = 1; i <= 8; ++i) {
    const Timestamp t = t_max * i / 9;
    auto snap = dg_->GetSnapshot(t);
    ASSERT_TRUE(snap.ok());
    Snapshot expected = ReplayAt(trace.events, t);
    EXPECT_TRUE(snap.value().Equals(expected))
        << "t=" << t << "\n" << snap.value().DiffString(expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DeltaGraphGroundTruthTest,
    ::testing::Values(DgConfig{"intersection", 2, 500},
                      DgConfig{"intersection", 4, 250},
                      DgConfig{"balanced", 2, 500},
                      DgConfig{"balanced", 3, 300},
                      DgConfig{"union", 2, 400},
                      DgConfig{"empty", 4, 500},
                      DgConfig{"mixed:0.9:0.9", 2, 350},
                      DgConfig{"mixed:0.1:0.1", 2, 350},
                      DgConfig{"skewed:0.5", 2, 500},
                      DgConfig{"rightskewed:0.7", 2, 450},
                      DgConfig{"leftskewed:0.7", 2, 450},
                      DgConfig{"intersection", 8, 100}),
    ConfigName);

// ---------------------------------------------------------------------------
// Focused DeltaGraph behaviors
// ---------------------------------------------------------------------------

class DeltaGraphTest : public ::testing::Test {
 protected:
  void Build(const std::vector<Event>& events, DeltaGraphOptions opts = {}) {
    store_ = NewMemKVStore();
    auto dg = DeltaGraph::Create(store_.get(), opts);
    ASSERT_TRUE(dg.ok()) << dg.status().ToString();
    dg_ = std::move(dg).value();
    ASSERT_TRUE(dg_->AppendAll(events).ok());
    ASSERT_TRUE(dg_->Finalize().ok());
  }

  std::unique_ptr<KVStore> store_;
  std::unique_ptr<DeltaGraph> dg_;
};

TEST_F(DeltaGraphTest, RejectsOutOfOrderEvents) {
  Build({Event::AddNode(10, 1)});
  EXPECT_FALSE(dg_->Append(Event::AddNode(5, 2)).ok());
}

TEST_F(DeltaGraphTest, EqualTimeEventsNeverStraddleLeaves) {
  // 50 events all at t=1, leaf size 10: all must land in one eventlist.
  std::vector<Event> events;
  for (NodeId n = 1; n <= 50; ++n) events.push_back(Event::AddNode(1, n));
  events.push_back(Event::AddNode(2, 51));
  DeltaGraphOptions opts;
  opts.leaf_size = 10;
  Build(events, opts);
  auto snap = dg_->GetSnapshot(1);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().NodeCount(), 50u);
  // Boundaries are distinct times.
  const auto& skel = dg_->skeleton();
  for (size_t i = 1; i < skel.leaves().size(); ++i) {
    EXPECT_LT(skel.node(skel.leaves()[i - 1]).boundary_time,
              skel.node(skel.leaves()[i]).boundary_time);
  }
}

TEST_F(DeltaGraphTest, QueriesBeforeFinalizeUseRecentReplay) {
  store_ = NewMemKVStore();
  DeltaGraphOptions opts;
  opts.leaf_size = 1000;  // Large: nothing gets flushed.
  auto dg = DeltaGraph::Create(store_.get(), opts);
  ASSERT_TRUE(dg.ok());
  dg_ = std::move(dg).value();
  ASSERT_TRUE(dg_->Append(Event::AddNode(1, 1)).ok());
  ASSERT_TRUE(dg_->Append(Event::AddNode(5, 2)).ok());
  auto snap = dg_->GetSnapshot(3);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().NodeCount(), 1u);
  auto snap2 = dg_->GetSnapshot(10);
  ASSERT_TRUE(snap2.ok());
  EXPECT_EQ(snap2.value().NodeCount(), 2u);
}

TEST_F(DeltaGraphTest, UpdatesAfterFinalizeRemainQueryable) {
  RandomTraceOptions opts;
  opts.num_events = 2000;
  opts.seed = 5;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 300;
  Build(trace.events, dgo);

  // Continue the trace after finalize (Section 6: updates to current graph).
  std::vector<Event> more;
  Timestamp t = trace.events.back().time;
  for (int i = 0; i < 1500; ++i) {
    t += 1;
    trace.world->AddRandomEdge(t, false, &more);
    if (i % 3 == 0) trace.world->DeleteRandomEdge(t, &more);
  }
  ASSERT_TRUE(dg_->AppendAll(more).ok());

  std::vector<Event> all = trace.events;
  all.insert(all.end(), more.begin(), more.end());

  // Query times spanning old index, new leaves, and the recent tail.
  const Timestamp t_max = all.back().time;
  for (int i = 1; i <= 10; ++i) {
    const Timestamp probe = t_max * i / 10;
    auto snap = dg_->GetSnapshot(probe);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    Snapshot expected = ReplayAt(all, probe);
    EXPECT_TRUE(snap.value().Equals(expected))
        << "t=" << probe << "\n" << snap.value().DiffString(expected);
  }
  // A second finalize attaches the new subtrees and persists; still correct.
  ASSERT_TRUE(dg_->Finalize().ok());
  auto snap = dg_->GetSnapshot(t_max);
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap.value().Equals(ReplayAt(all, t_max)));
}

// Regression: events appended after Finalize with a timestamp *equal* to the
// last indexed event's used to fall on the closed end of the final leaf's
// (lo, hi] interval and vanish from retrieval (exact replay saw them).
// Finalize now holds the trailing equal-time run back in the recent
// eventlist, so no boundary is ever cut inside a run.
TEST_F(DeltaGraphTest, PostFinalizeAppendsAtBoundaryTimeAreVisible) {
  std::vector<Event> events;
  for (NodeId n = 1; n <= 40; ++n) {
    events.push_back(Event::AddNode(n, n));  // Distinct times 1..40.
  }
  DeltaGraphOptions opts;
  opts.leaf_size = 10;
  Build(events, opts);
  const Timestamp t_end = 40;

  // The final boundary must sit strictly before the last event's time.
  const auto& skel = dg_->skeleton();
  const Timestamp boundary = skel.node(skel.leaves().back()).boundary_time;
  EXPECT_LT(boundary, t_end);

  // Resume appending at exactly the last indexed timestamp.
  ASSERT_TRUE(dg_->Append(Event::AddNode(t_end, 100)).ok());
  ASSERT_TRUE(dg_->Append(Event::AddNode(t_end, 101)).ok());
  ASSERT_TRUE(dg_->Append(Event::AddNode(t_end + 3, 102)).ok());

  std::vector<Event> all = events;
  all.push_back(Event::AddNode(t_end, 100));
  all.push_back(Event::AddNode(t_end, 101));
  all.push_back(Event::AddNode(t_end + 3, 102));

  // GetSnapshot at the boundary-equal time sees the resumed events.
  auto snap = dg_->GetSnapshot(t_end);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(snap.value().HasNode(100));
  EXPECT_TRUE(snap.value().HasNode(101));
  EXPECT_TRUE(snap.value().Equals(ReplayAt(all, t_end)));

  // GetSnapshots (multipoint) and probes around the run agree with replay.
  auto snaps = dg_->GetSnapshots({t_end - 1, t_end, t_end + 1, t_end + 3});
  ASSERT_TRUE(snaps.ok());
  const std::vector<Timestamp> probes = {t_end - 1, t_end, t_end + 1, t_end + 3};
  for (size_t i = 0; i < probes.size(); ++i) {
    Snapshot expected = ReplayAt(all, probes[i]);
    EXPECT_TRUE(snaps.value()[i].Equals(expected))
        << "t=" << probes[i] << "\n" << snaps.value()[i].DiffString(expected);
  }

  // CollectEvents over a window spanning the run returns the resumed events.
  EventList window;
  ASSERT_TRUE(
      dg_->CollectEvents(t_end, t_end + 1, kCompAllWithTransient, &window).ok());
  size_t at_boundary = 0;
  for (const auto& e : window.events()) {
    if (e.time == t_end) ++at_boundary;
  }
  EXPECT_EQ(at_boundary, 3u);  // The original t=40 event + the two resumed.
}

// Persistence round-trip of the resumed-index path: Append -> Finalize ->
// Append (including boundary-equal timestamps) -> Finalize -> Open; retrieval
// over the reopened index equals exact replay everywhere, including at the
// held-back run's timestamp.
TEST_F(DeltaGraphTest, ResumedIndexPersistenceRoundTrip) {
  RandomTraceOptions opts;
  opts.num_events = 1500;
  opts.seed = 91;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 200;
  Build(trace.events, dgo);

  // Resume: a run at exactly the last indexed time, then strictly later ones.
  std::vector<Event> more;
  const Timestamp t_end = trace.events.back().time;
  trace.world->AddRandomEdge(t_end, false, &more);
  trace.world->AddRandomEdge(t_end, false, &more);
  Timestamp t = t_end;
  for (int i = 0; i < 500; ++i) {
    t += (i % 5 == 0) ? 0 : 1;  // Mix equal-time runs into the resumed trace.
    trace.world->AddRandomEdge(t, false, &more);
  }
  ASSERT_TRUE(dg_->AppendAll(more).ok());
  ASSERT_TRUE(dg_->Finalize().ok());  // Persists skeleton + held-back recent.

  std::vector<Event> all = trace.events;
  all.insert(all.end(), more.begin(), more.end());

  dg_.reset();
  auto reopened = DeltaGraph::Open(store_.get());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto dg2 = std::move(reopened).value();
  EXPECT_EQ(dg2->event_count(), all.size());

  const Timestamp t_max = all.back().time;
  std::vector<Timestamp> probes = {t_end, t_max, t_max - 1};
  for (int i = 1; i <= 8; ++i) probes.push_back(t_max * i / 8);
  for (Timestamp probe : probes) {
    auto snap = dg2->GetSnapshot(probe);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    Snapshot expected = ReplayAt(all, probe);
    EXPECT_TRUE(snap.value().Equals(expected))
        << "t=" << probe << "\n" << snap.value().DiffString(expected);
  }
  EXPECT_TRUE(dg2->current().Equals(ReplayAt(all, t_max)));

  // The reopened index keeps appending — still at the same head timestamp.
  std::vector<Event> tail;
  trace.world->AddRandomEdge(t_max, false, &tail);
  trace.world->AddRandomEdge(t_max + 2, false, &tail);
  ASSERT_TRUE(dg2->AppendAll(tail).ok());
  all.insert(all.end(), tail.begin(), tail.end());
  auto head = dg2->GetSnapshot(t_max + 2);
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(head.value().Equals(ReplayAt(all, t_max + 2)));
}

// Odd-arity finalization: with arity 3 and a leaf count that leaves a lone
// pending node at several levels, Finalize must still converge to one root
// per hierarchy (lone leftovers are promoted, never given a single-child
// parent) and retrieval must stay exact.
TEST_F(DeltaGraphTest, OddArityFinalizationCascades) {
  for (size_t num_events : {700u, 1000u, 1300u}) {
    RandomTraceOptions opts;
    opts.num_events = num_events;
    opts.seed = 7 + num_events;
    GeneratedTrace trace = GenerateRandomTrace(opts);
    DeltaGraphOptions dgo;
    dgo.leaf_size = 100;  // ~7, 10, 13 leaves; arity 3 leaves odd levels.
    dgo.arity = 3;
    Build(trace.events, dgo);

    // Exactly one root (super-root child) per hierarchy.
    const auto& skel = dg_->skeleton();
    size_t roots = 0;
    for (int32_t eid : skel.incident_edges(skel.super_root())) {
      if (!skel.edge(eid).deleted) ++roots;
    }
    EXPECT_EQ(roots, 1u) << "leaves=" << skel.leaves().size();

    // No interior node may have exactly one child (a delta onto itself).
    for (size_t i = 0; i < skel.node_count(); ++i) {
      const auto& n = skel.node(static_cast<int32_t>(i));
      if (n.is_leaf || n.is_super_root) continue;
      size_t children = 0;
      for (int32_t eid : skel.incident_edges(n.id)) {
        const auto& e = skel.edge(eid);
        if (!e.deleted && !e.is_eventlist && e.from == n.id) ++children;
      }
      EXPECT_GE(children, 2u) << "node " << n.id;
    }

    const Timestamp t_max = trace.events.back().time;
    for (int i = 1; i <= 5; ++i) {
      const Timestamp probe = t_max * i / 5;
      auto snap = dg_->GetSnapshot(probe);
      ASSERT_TRUE(snap.ok());
      EXPECT_TRUE(snap.value().Equals(ReplayAt(trace.events, probe)));
    }
  }
}

// Decoded-cache keys must be unique across the (id, components, is_delta)
// space — the id is packed into the upper 59 bits (debug-asserted against
// overflow in DeltaStore::CacheKey).
TEST(DeltaStoreCacheKeyTest, UniqueAcrossIdComponentsAndKind) {
  std::unordered_set<uint64_t> seen;
  const std::vector<DeltaId> ids = {0, 1, 2, 63, 64, 1u << 20, (1ull << 59) - 1};
  for (DeltaId id : ids) {
    for (unsigned components = 0; components <= 0xF; ++components) {
      for (bool is_delta : {false, true}) {
        const uint64_t key = DeltaStore::CacheKey(id, components, is_delta);
        EXPECT_TRUE(seen.insert(key).second)
            << "collision: id=" << id << " components=" << components
            << " is_delta=" << is_delta;
        EXPECT_EQ(key >> 5, id);  // CacheInvalidate recovers the id this way.
      }
    }
  }
}

TEST_F(DeltaGraphTest, CurrentGraphTracksHead) {
  RandomTraceOptions opts;
  opts.num_events = 1000;
  opts.seed = 19;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  Build(trace.events);
  Snapshot expected = ReplayAt(trace.events, trace.events.back().time);
  EXPECT_TRUE(dg_->current().Equals(expected));
}

TEST_F(DeltaGraphTest, OpenRestoresIndex) {
  RandomTraceOptions opts;
  opts.num_events = 3000;
  opts.seed = 23;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 400;
  dgo.arity = 3;
  dgo.functions = {"balanced"};
  Build(trace.events, dgo);
  const Timestamp t_max = trace.events.back().time;

  dg_.reset();
  auto reopened = DeltaGraph::Open(store_.get());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto dg2 = std::move(reopened).value();
  EXPECT_EQ(dg2->options().arity, 3);
  EXPECT_EQ(dg2->options().functions[0], "balanced");
  EXPECT_EQ(dg2->event_count(), trace.events.size());

  for (int i = 1; i <= 6; ++i) {
    const Timestamp t = t_max * i / 6;
    auto snap = dg2->GetSnapshot(t);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    Snapshot expected = ReplayAt(trace.events, t);
    EXPECT_TRUE(snap.value().Equals(expected)) << "t=" << t;
  }
  // Current graph was rebuilt.
  EXPECT_TRUE(dg2->current().Equals(ReplayAt(trace.events, t_max)));
}

TEST_F(DeltaGraphTest, CollectEventsWindowIncludesTransients) {
  std::vector<Event> events;
  events.push_back(Event::AddNode(1, 1));
  events.push_back(Event::AddNode(2, 2));
  events.push_back(Event::TransientEdge(3, 1, 2, "ping"));
  events.push_back(Event::AddEdge(4, 10, 1, 2, false));
  events.push_back(Event::TransientEdge(5, 2, 1, "pong"));
  events.push_back(Event::AddNode(6, 3));
  DeltaGraphOptions opts;
  opts.leaf_size = 2;
  Build(events, opts);

  EventList window;
  ASSERT_TRUE(dg_->CollectEvents(2, 6, kCompAllWithTransient, &window).ok());
  ASSERT_EQ(window.size(), 4u);
  EXPECT_EQ(window[0].type, EventType::kAddNode);
  EXPECT_EQ(window[1].type, EventType::kTransientEdge);
  EXPECT_EQ(window[2].type, EventType::kAddEdge);
  EXPECT_EQ(window[3].type, EventType::kTransientEdge);
  EXPECT_EQ(window[3].key, "pong");

  // Without the transient component only durable events appear.
  EventList no_transient;
  ASSERT_TRUE(dg_->CollectEvents(2, 6, kCompAll, &no_transient).ok());
  EXPECT_EQ(no_transient.size(), 2u);

  EXPECT_FALSE(dg_->CollectEvents(6, 2, kCompAll, &window).ok());
}

TEST_F(DeltaGraphTest, StatsReflectIndexShape) {
  RandomTraceOptions opts;
  opts.num_events = 3000;
  opts.seed = 29;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 250;
  dgo.arity = 2;
  Build(trace.events, dgo);

  DeltaGraphStats stats = dg_->Stats();
  EXPECT_GE(stats.leaf_count, 8u);
  EXPECT_GT(stats.height, 2);
  EXPECT_GT(stats.delta_bytes, 0u);
  EXPECT_GT(stats.eventlist_bytes, 0u);
  EXPECT_GT(stats.store_bytes, 0u);
  EXPECT_EQ(stats.materialized_nodes, 0u);

  ASSERT_TRUE(dg_->MaterializeDepth(0).ok());
  stats = dg_->Stats();
  EXPECT_GE(stats.materialized_nodes, 1u);
}

TEST_F(DeltaGraphTest, PlanUsesMaterializedShortcut) {
  RandomTraceOptions opts;
  opts.num_events = 4000;
  opts.seed = 31;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 200;
  dgo.maintain_current = false;
  Build(trace.events, dgo);

  const Timestamp mid = trace.events.back().time / 2;
  auto before = dg_->PlanFor({mid});
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(dg_->MaterializeAllLeaves().ok());
  auto after = dg_->PlanFor({mid});
  ASSERT_TRUE(after.ok());
  // With every leaf in memory the plan cost must collapse.
  EXPECT_LT(after.value().estimated_cost, before.value().estimated_cost / 2);
  auto snap = dg_->GetSnapshot(mid);
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap.value().Equals(ReplayAt(trace.events, mid)));
}

TEST_F(DeltaGraphTest, MultipointPlanCheaperThanIndependentSinglepoints) {
  RandomTraceOptions opts;
  opts.num_events = 8000;
  opts.seed = 37;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 500;
  dgo.maintain_current = false;
  Build(trace.events, dgo);

  const Timestamp t_max = trace.events.back().time;
  std::vector<Timestamp> times;
  for (int i = 0; i < 6; ++i) times.push_back(t_max / 2 + i * t_max / 50);

  auto multi = dg_->PlanFor(times);
  ASSERT_TRUE(multi.ok());
  double single_total = 0;
  for (Timestamp t : times) {
    auto p = dg_->PlanFor({t});
    ASSERT_TRUE(p.ok());
    single_total += p.value().estimated_cost;
  }
  EXPECT_LT(multi.value().estimated_cost, single_total * 0.9);
}

TEST_F(DeltaGraphTest, EmptyFunctionMatchesCopyLogShape) {
  // With the Empty differential function every interior delta stores a full
  // child snapshot — the Copy+Log equivalence of Section 5.2.
  RandomTraceOptions opts;
  opts.num_events = 2000;
  opts.seed = 41;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 400;
  dgo.functions = {"empty"};
  Build(trace.events, dgo);
  const Timestamp mid = trace.events.back().time / 2;
  auto snap = dg_->GetSnapshot(mid);
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap.value().Equals(ReplayAt(trace.events, mid)));
}

TEST_F(DeltaGraphTest, MultiHierarchyIndexIsCorrectAndPlansAcrossBoth) {
  RandomTraceOptions opts;
  opts.num_events = 4000;
  opts.seed = 43;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 300;
  dgo.functions = {"intersection", "union"};  // Two hierarchies (Fig. 3(b)).
  Build(trace.events, dgo);

  const Timestamp t_max = trace.events.back().time;
  for (int i = 1; i <= 8; ++i) {
    const Timestamp t = t_max * i / 9;
    auto snap = dg_->GetSnapshot(t);
    ASSERT_TRUE(snap.ok());
    EXPECT_TRUE(snap.value().Equals(ReplayAt(trace.events, t))) << "t=" << t;
  }
  // Two hierarchies => more interior nodes than one.
  EXPECT_GT(dg_->Stats().node_count, dg_->Stats().leaf_count * 2 - 2);
}

TEST_F(DeltaGraphTest, GrowingOnlyIntersectionRootIsInitialGraph) {
  // For a growing-only graph the Intersection root equals G0 (Section 5.2) —
  // here G0 is empty, so the super-root delta must be tiny.
  DblpLikeOptions dblp;
  dblp.target_edges = 3000;
  dblp.years = 10;
  dblp.attrs_per_node = 2;
  GeneratedTrace trace = GenerateDblpLikeTrace(dblp);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 500;
  dgo.functions = {"intersection"};
  Build(trace.events, dgo);

  const auto& skel = dg_->skeleton();
  uint64_t super_root_bytes = 0;
  for (int32_t eid : skel.incident_edges(skel.super_root())) {
    super_root_bytes += skel.edge(eid).sizes.TotalBytes(kCompAll);
  }
  // The root is the intersection of all leaves; leaf 0 is empty, so the root
  // delta from the (empty) super-root is empty.
  EXPECT_EQ(super_root_bytes, 0u);
}

TEST_F(DeltaGraphTest, InitialSnapshotSeedsLeafZero) {
  // Dataset-2 style: a non-empty starting graph followed by churn.
  RandomTraceOptions opts;
  opts.num_events = 1500;
  opts.seed = 53;
  GeneratedTrace bootstrap = GenerateRandomTrace(opts);
  const Snapshot g0 = bootstrap.world->graph();
  const Timestamp t0 = bootstrap.events.back().time;

  std::vector<Event> churn;
  ChurnOptions copts;
  copts.num_events = 2000;
  copts.seed = 5;
  AppendChurnPhase(bootstrap.world.get(), t0 + 1, copts, &churn);

  store_ = NewMemKVStore();
  DeltaGraphOptions dgo;
  dgo.leaf_size = 300;
  dgo.functions = {"intersection"};
  auto dg = DeltaGraph::Create(store_.get(), dgo);
  ASSERT_TRUE(dg.ok());
  dg_ = std::move(dg).value();
  ASSERT_TRUE(dg_->SetInitialSnapshot(g0, t0).ok());
  EXPECT_FALSE(dg_->SetInitialSnapshot(g0, t0).ok());  // Only once.
  ASSERT_TRUE(dg_->AppendAll(churn).ok());
  ASSERT_TRUE(dg_->Finalize().ok());

  // Ground truth: g0 plus churn prefix.
  auto expected_at = [&](Timestamp t) {
    Snapshot g = g0;
    for (const auto& e : churn) {
      if (e.time > t) break;
      EXPECT_TRUE(g.Apply(e, true).ok());
    }
    return g;
  };
  const Timestamp t_max = churn.back().time;
  for (Timestamp t : {t0 - 5, t0, (t0 + t_max) / 2, t_max}) {
    auto snap = dg_->GetSnapshot(t);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    Snapshot expected = expected_at(std::max(t, t0));
    EXPECT_TRUE(snap.value().Equals(expected))
        << "t=" << t << "\n" << snap.value().DiffString(expected);
  }
  // With a non-empty G0 and edge-only churn, the Intersection root retains
  // G0's nodes: the super-root delta is non-trivial.
  uint64_t super_root_elements = 0;
  const auto& skel = dg_->skeleton();
  for (int32_t eid : skel.incident_edges(skel.super_root())) {
    super_root_elements += skel.edge(eid).sizes.TotalElements(kCompAll);
  }
  EXPECT_GT(super_root_elements, g0.NodeCount() / 2);
}

// ---------------------------------------------------------------------------
// Partitioned index
// ---------------------------------------------------------------------------

class PartitionedTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionedTest, MergedRetrievalMatchesUnpartitioned) {
  RandomTraceOptions opts;
  opts.num_events = 5000;
  opts.seed = 47;
  GeneratedTrace trace = GenerateRandomTrace(opts);

  const int P = GetParam();
  std::vector<std::unique_ptr<KVStore>> stores;
  std::vector<KVStore*> store_ptrs;
  for (int i = 0; i < P; ++i) {
    stores.push_back(NewMemKVStore());
    store_ptrs.push_back(stores.back().get());
  }
  DeltaGraphOptions dgo;
  dgo.leaf_size = 200;
  auto pdg = PartitionedDeltaGraph::Create(store_ptrs, dgo);
  ASSERT_TRUE(pdg.ok());
  ASSERT_TRUE(pdg.value()->AppendAll(trace.events).ok());
  ASSERT_TRUE(pdg.value()->Finalize().ok());

  const Timestamp t_max = trace.events.back().time;
  for (int i = 1; i <= 6; ++i) {
    const Timestamp t = t_max * i / 6;
    auto snap = pdg.value()->GetSnapshot(t, kCompAll);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    Snapshot expected = ReplayAt(trace.events, t);
    EXPECT_TRUE(snap.value().Equals(expected))
        << "t=" << t << "\n" << snap.value().DiffString(expected);
  }
  // Parts are disjoint and cover everything.
  auto parts = pdg.value()->GetSnapshotParts(t_max);
  ASSERT_TRUE(parts.ok());
  size_t total_nodes = 0;
  for (const auto& p : parts.value()) total_nodes += p.NodeCount();
  EXPECT_EQ(total_nodes, ReplayAt(trace.events, t_max).NodeCount());
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionedTest,
                         ::testing::Values(1, 2, 4, 7));

TEST(PartitionedMultipointTest, MatchesReplayAtEveryTime) {
  RandomTraceOptions opts;
  opts.num_events = 4000;
  opts.seed = 61;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  std::vector<std::unique_ptr<KVStore>> stores;
  std::vector<KVStore*> ptrs;
  for (int i = 0; i < 3; ++i) {
    stores.push_back(NewMemKVStore());
    ptrs.push_back(stores.back().get());
  }
  DeltaGraphOptions dgo;
  dgo.leaf_size = 250;
  auto pdg = PartitionedDeltaGraph::Create(ptrs, dgo);
  ASSERT_TRUE(pdg.ok());
  ASSERT_TRUE(pdg.value()->AppendAll(trace.events).ok());
  ASSERT_TRUE(pdg.value()->Finalize().ok());

  const Timestamp t_max = trace.events.back().time;
  std::vector<Timestamp> times;
  for (int i = 1; i <= 5; ++i) times.push_back(t_max * i / 6);
  auto snaps = pdg.value()->GetSnapshots(times, kCompAll);
  ASSERT_TRUE(snaps.ok()) << snaps.status().ToString();
  ASSERT_EQ(snaps.value().size(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    Snapshot expected = ReplayAt(trace.events, times[i]);
    EXPECT_TRUE(snaps.value()[i].Equals(expected))
        << "t=" << times[i] << "\n" << snaps.value()[i].DiffString(expected);
  }
}

TEST(PartitionedInitialSnapshotTest, SplitsAndMergesExactly) {
  RandomTraceOptions opts;
  opts.num_events = 1500;
  opts.seed = 67;
  GeneratedTrace bootstrap = GenerateRandomTrace(opts);
  const Snapshot g0 = bootstrap.world->graph();
  const Timestamp t0 = bootstrap.events.back().time;
  std::vector<Event> churn;
  ChurnOptions copts;
  copts.num_events = 1200;
  copts.seed = 71;
  AppendChurnPhase(bootstrap.world.get(), t0 + 1, copts, &churn);

  std::vector<std::unique_ptr<KVStore>> stores;
  std::vector<KVStore*> ptrs;
  for (int i = 0; i < 4; ++i) {
    stores.push_back(NewMemKVStore());
    ptrs.push_back(stores.back().get());
  }
  DeltaGraphOptions dgo;
  dgo.leaf_size = 200;
  auto pdg = PartitionedDeltaGraph::Create(ptrs, dgo);
  ASSERT_TRUE(pdg.ok());
  ASSERT_TRUE(pdg.value()->SetInitialSnapshot(g0, t0).ok());
  ASSERT_TRUE(pdg.value()->AppendAll(churn).ok());
  ASSERT_TRUE(pdg.value()->Finalize().ok());

  auto expected_at = [&](Timestamp t) {
    Snapshot g = g0;
    for (const auto& e : churn) {
      if (e.time > t) break;
      EXPECT_TRUE(g.Apply(e, true).ok());
    }
    return g;
  };
  for (Timestamp t : {t0, (t0 + churn.back().time) / 2, churn.back().time}) {
    auto snap = pdg.value()->GetSnapshot(t);
    ASSERT_TRUE(snap.ok());
    Snapshot expected = expected_at(t);
    EXPECT_TRUE(snap.value().Equals(expected))
        << "t=" << t << "\n" << snap.value().DiffString(expected);
  }
}

// Stress: interleave queries with continuing updates — the paper's setting
// of "maintaining the current state of the database for ongoing updates and
// queries" at once.
TEST(UpdateQueryInterleavingTest, QueriesStayCorrectWhileUpdating) {
  RandomTraceOptions opts;
  opts.num_events = 800;
  opts.seed = 73;
  GeneratedTrace trace = GenerateRandomTrace(opts);

  auto store = NewMemKVStore();
  DeltaGraphOptions dgo;
  dgo.leaf_size = 150;
  auto dg_result = DeltaGraph::Create(store.get(), dgo);
  ASSERT_TRUE(dg_result.ok());
  auto dg = std::move(dg_result).value();
  ASSERT_TRUE(dg->AppendAll(trace.events).ok());
  ASSERT_TRUE(dg->Finalize().ok());

  std::vector<Event> all = trace.events;
  test::SeededRng rng(79);
  Timestamp t = all.back().time;
  for (int round = 0; round < 30; ++round) {
    // A burst of updates...
    std::vector<Event> burst;
    for (int i = 0; i < 40; ++i) {
      t += 1;
      trace.world->AddRandomEdge(t, false, &burst);
      if (i % 4 == 0) trace.world->DeleteRandomEdge(t, &burst);
    }
    ASSERT_TRUE(dg->AppendAll(burst).ok());
    all.insert(all.end(), burst.begin(), burst.end());
    // ...then a query at a random historical or recent time.
    const Timestamp probe =
        all.front().time + static_cast<Timestamp>(
                               rng.Uniform(static_cast<uint64_t>(t - all.front().time)));
    auto snap = dg->GetSnapshot(probe);
    ASSERT_TRUE(snap.ok()) << "round " << round;
    Snapshot expected = ReplayAt(all, probe);
    ASSERT_TRUE(snap.value().Equals(expected))
        << "round " << round << " t=" << probe << "\n"
        << snap.value().DiffString(expected);
  }
}

// ---------------------------------------------------------------------------
// Materialization paths: all three must leave identical skeleton state
// ---------------------------------------------------------------------------

// The planner weights a materialized start by the node's element_count and
// the adaptive advisor sizes candidates with it, so a path that sets
// `materialized` without refreshing `element_count` mis-costs every later
// plan. Struct-only copies expose it: their element counts differ from the
// full counts CutLeaf recorded at build time.
TEST(MaterializationPathsTest, AllPathsLeaveIdenticalSkeletonState) {
  RandomTraceOptions opts;
  opts.num_events = 3000;
  opts.seed = 99;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  DeltaGraphOptions dgo;
  dgo.leaf_size = 250;

  auto build = [&](KVStore* store) {
    auto dg = DeltaGraph::Create(store, dgo);
    EXPECT_TRUE(dg.ok()) << dg.status().ToString();
    auto g = std::move(dg).value();
    EXPECT_TRUE(g->AppendAll(trace.events).ok());
    EXPECT_TRUE(g->Finalize().ok());
    return g;
  };
  auto s1 = NewMemKVStore(), s2 = NewMemKVStore(), s3 = NewMemKVStore();
  auto per_node = build(s1.get());
  auto all_leaves = build(s2.get());
  auto by_depth = build(s3.get());
  ASSERT_GE(per_node->skeleton().leaves().size(), 4u);

  for (int32_t leaf : per_node->skeleton().leaves()) {
    ASSERT_TRUE(per_node->MaterializeNode(leaf, kCompStruct).ok());
  }
  ASSERT_TRUE(all_leaves->MaterializeAllLeaves(kCompStruct).ok());
  // Deep enough that the NodesAtDepth frontier has converged to the leaf set
  // (leaves persist in the frontier on ragged trees).
  auto md = by_depth->MaterializeDepth(64, kCompStruct);
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  EXPECT_EQ(md.value(), by_depth->skeleton().leaves().size());

  const Skeleton& a = per_node->skeleton();
  const Skeleton& b = all_leaves->skeleton();
  const Skeleton& c = by_depth->skeleton();
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.node_count(), c.node_count());
  for (size_t i = 0; i < a.node_count(); ++i) {
    const int32_t id = static_cast<int32_t>(i);
    const SkeletonNode& na = a.node(id);
    const SkeletonNode& nb = b.node(id);
    const SkeletonNode& nc = c.node(id);
    EXPECT_EQ(na.materialized, nb.materialized) << "node " << id;
    EXPECT_EQ(na.materialized, nc.materialized) << "node " << id;
    EXPECT_EQ(na.materialized_components, nb.materialized_components)
        << "node " << id;
    EXPECT_EQ(na.materialized_components, nc.materialized_components)
        << "node " << id;
    EXPECT_EQ(na.element_count, nb.element_count) << "node " << id;
    EXPECT_EQ(na.element_count, nc.element_count) << "node " << id;
    if (na.is_leaf) {
      ASSERT_NE(per_node->materialized_snapshot(id), nullptr);
      EXPECT_EQ(na.element_count,
                per_node->materialized_snapshot(id)->ElementCount())
          << "node " << id;
    }
  }
}

// ---------------------------------------------------------------------------
// FetchFrequency: concurrency and determinism
// ---------------------------------------------------------------------------

// Reset must serialize with EnsureSize's count carry-over: an unlocked reset
// can zero the old arena after the grow already copied the counts out,
// resurrecting them in the new arena. Recorders hammer both arenas the whole
// time; run under TSan this also proves the arena handoff itself is clean.
TEST(FetchFrequencyTest, ConcurrentGrowResetRecordIsSafe) {
  FetchFrequency freq;
  freq.SetAlwaysOn(true);
  freq.EnsureSize(64);

  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  for (int r = 0; r < 2; ++r) {
    recorders.emplace_back([&freq, &stop, r] {
      uint64_t x = 88172645463325252ull + r;
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        freq.Record(static_cast<DeltaId>(x % 4096));
      }
    });
  }
  std::thread grower([&freq] {
    for (size_t n = 64; n <= 4096; n += 64) {
      freq.EnsureSize(n);
      std::this_thread::yield();
    }
  });
  std::thread resetter([&freq] {
    for (int i = 0; i < 200; ++i) {
      if (i % 3 == 0) {
        freq.Decay();
      } else {
        freq.Reset();
      }
      std::this_thread::yield();
    }
  });
  grower.join();
  resetter.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : recorders) t.join();

  EXPECT_GE(freq.size(), 4096u);
  freq.Reset();
  for (size_t id = 0; id < freq.size(); ++id) {
    ASSERT_EQ(freq.Count(id), 0u) << "stale count resurrected at id " << id;
  }
}

TEST(FetchFrequencyTest, TopKJSONBreaksTiesById) {
  FetchFrequency freq;
  freq.SetAlwaysOn(true);
  freq.EnsureSize(16);
  for (DeltaId id : {9, 3, 5}) {
    freq.Record(id);
    freq.Record(id);
  }
  for (int i = 0; i < 5; ++i) freq.Record(7);
  // Count descending, equal counts by ascending id — including which of the
  // tied entries make a truncated top-k.
  EXPECT_EQ(freq.TopKJSON(8),
            "[{\"id\":7,\"fetches\":5},{\"id\":3,\"fetches\":2},"
            "{\"id\":5,\"fetches\":2},{\"id\":9,\"fetches\":2}]");
  EXPECT_EQ(freq.TopKJSON(2),
            "[{\"id\":7,\"fetches\":5},{\"id\":3,\"fetches\":2}]");
}

}  // namespace
}  // namespace hgdb
