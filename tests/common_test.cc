#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/dynamic_bitset.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace hgdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("delta 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: delta 42");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::Corruption("x").ToString(), "Corruption: x");
  EXPECT_EQ(Status::InvalidArgument("x").ToString(), "InvalidArgument: x");
  EXPECT_EQ(Status::IOError("x").ToString(), "IOError: x");
  EXPECT_EQ(Status::NotSupported("x").ToString(), "NotSupported: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  Slice in(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const uint64_t values[] = {0,       1,        127,        128,
                             16383,   16384,    (1ull << 32) - 1, 1ull << 32,
                             ~0ull >> 1, ~0ull};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, SignedVarintRoundTrip) {
  const int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX, -123456789};
  std::string buf;
  for (int64_t v : values) PutVarsint64(&buf, v);
  Slice in(buf);
  for (int64_t v : values) {
    int64_t got;
    ASSERT_TRUE(GetVarsint64(&in, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  PutLengthPrefixedSlice(&buf, Slice(std::string(1000, 'x')));
  Slice in(buf);
  std::string a, b, c;
  ASSERT_TRUE(GetLengthPrefixedString(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedString(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedString(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Low bits of sequential inputs should not be sequential after mixing.
  int same_parity = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if ((Mix64(i) & 1) == (i & 1)) ++same_parity;
  }
  EXPECT_GT(same_parity, 350);
  EXPECT_LT(same_parity, 650);
}

TEST(SliceTest, BasicOps) {
  Slice s("abcdef");
  EXPECT_EQ(s.size(), 6u);
  EXPECT_TRUE(s.StartsWith("abc"));
  EXPECT_FALSE(s.StartsWith("abd"));
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("abc").Compare(Slice("abcd")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
}

TEST(DynamicBitsetTest, SetTestGrow) {
  DynamicBitset bm;
  EXPECT_FALSE(bm.Test(0));
  EXPECT_FALSE(bm.Test(1000));
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(1000);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(1000));
  EXPECT_FALSE(bm.Test(999));
  EXPECT_EQ(bm.Count(), 4u);
  bm.Reset(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.Count(), 3u);
}

TEST(DynamicBitsetTest, NoneAndClear) {
  DynamicBitset bm;
  EXPECT_TRUE(bm.None());
  bm.Set(77);
  EXPECT_FALSE(bm.None());
  bm.Clear();
  EXPECT_TRUE(bm.None());
}

TEST(DynamicBitsetTest, EqualityIgnoresTrailingZeroWords) {
  DynamicBitset a, b;
  a.Set(5);
  b.Set(5);
  b.Set(500);
  b.Reset(500);  // b now has extra zero words.
  EXPECT_TRUE(a == b);
  b.Set(6);
  EXPECT_FALSE(a == b);
}

TEST(DynamicBitsetTest, SettingOutOfRangeZeroIsNoop) {
  DynamicBitset bm;
  bm.Set(10000, false);
  EXPECT_EQ(bm.MemoryBytes(), 0u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(1000), b.Uniform(1000));
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  ZipfGenerator zipf(100, 1.2, 3);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (zipf.Next() < 10) ++low;
  }
  // With theta=1.2 the first 10 of 100 values should take well over half.
  EXPECT_GT(low, total / 2);
}

}  // namespace
}  // namespace hgdb
