#ifndef HISTGRAPH_TESTS_TEST_ORACLE_H_
#define HISTGRAPH_TESTS_TEST_ORACLE_H_

// A deliberately naive ground-truth model of snapshot retrieval: rebuild the
// graph as of time t by replaying the full event log from the beginning into
// plain std::unordered_map / std::map stores. It shares NO code with the
// Snapshot/DeltaGraph machinery under test — no interner, no COW, no chunked
// stores, no deltas — so an aliasing or visibility bug in any of those layers
// cannot cancel itself out of a comparison against this oracle.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "graph/snapshot.h"
#include "temporal/event.h"

namespace hgdb {
namespace test {

class NaiveReplayOracle {
 public:
  struct OracleEdge {
    NodeId src;
    NodeId dst;
    bool directed;
  };
  using AttrTable = std::unordered_map<uint64_t, std::map<std::string, std::string>>;

  /// Replays every event of `log` with time <= t (in log order), keeping only
  /// the aspects selected by `components`. Transient events are skipped:
  /// they are not part of any snapshot by definition.
  static NaiveReplayOracle At(const std::vector<Event>& log, Timestamp t,
                              unsigned components) {
    NaiveReplayOracle oracle;
    for (const Event& e : log) {
      if (e.time > t) break;  // Logs are appended chronologically.
      oracle.Apply(e, components);
    }
    return oracle;
  }

  void Apply(const Event& e, unsigned components) {
    if (e.is_transient()) return;
    if ((e.component() & components) == 0) return;
    switch (e.type) {
      case EventType::kAddNode:
        nodes_.insert(e.node);
        break;
      case EventType::kDeleteNode:
        nodes_.erase(e.node);
        break;
      case EventType::kAddEdge:
        edges_[e.edge] = OracleEdge{e.src, e.dst, e.directed};
        break;
      case EventType::kDeleteEdge:
        edges_.erase(e.edge);
        break;
      case EventType::kNodeAttr:
        ApplyAttr(&node_attrs_, e.node, e.key, e.new_value);
        break;
      case EventType::kEdgeAttr:
        ApplyAttr(&edge_attrs_, e.edge, e.key, e.new_value);
        break;
      case EventType::kTransientEdge:
      case EventType::kTransientNode:
        break;
    }
  }

  /// Element-for-element comparison in both directions, with a diagnostic
  /// listing the first differences on failure.
  ::testing::AssertionResult Matches(const Snapshot& got) const {
    std::ostringstream diff;
    size_t mismatches = 0;
    auto note = [&](const std::string& s) {
      if (mismatches < 10) diff << "  " << s << "\n";
      ++mismatches;
    };

    // Nodes.
    for (NodeId n : nodes_) {
      if (!got.HasNode(n)) note("missing node " + std::to_string(n));
    }
    for (NodeId n : got.nodes()) {
      if (nodes_.count(n) == 0) note("extra node " + std::to_string(n));
    }
    // Edges (id + endpoints + orientation).
    for (const auto& [id, rec] : edges_) {
      const EdgeRecord* g = got.FindEdge(id);
      if (g == nullptr) {
        note("missing edge " + std::to_string(id));
      } else if (g->src != rec.src || g->dst != rec.dst ||
                 g->directed != rec.directed) {
        note("edge " + std::to_string(id) + " record differs");
      }
    }
    for (const auto& [id, rec] : got.edges()) {
      (void)rec;
      if (edges_.count(id) == 0) note("extra edge " + std::to_string(id));
    }
    // Attributes, compared through the string API so interner state is part
    // of what is being checked.
    MatchAttrs(
        node_attrs_, got.node_attrs(),
        [&](uint64_t owner, const std::string& key) {
          return got.GetNodeAttr(static_cast<NodeId>(owner), key);
        },
        "node", note);
    MatchAttrs(
        edge_attrs_, got.edge_attrs(),
        [&](uint64_t owner, const std::string& key) {
          return got.GetEdgeAttr(static_cast<EdgeId>(owner), key);
        },
        "edge", note);

    if (mismatches == 0) return ::testing::AssertionSuccess();
    auto result = ::testing::AssertionFailure();
    result << mismatches << " element mismatch(es) vs naive replay:\n"
           << diff.str();
    if (mismatches > 10) result << "  ... and " << (mismatches - 10) << " more\n";
    return result;
  }

  size_t NodeCount() const { return nodes_.size(); }
  size_t EdgeCount() const { return edges_.size(); }

 private:
  static void ApplyAttr(AttrTable* table, uint64_t owner, const std::string& key,
                        const std::optional<std::string>& new_value) {
    if (new_value.has_value()) {
      (*table)[owner][key] = *new_value;
    } else {
      auto it = table->find(owner);
      if (it != table->end()) {
        it->second.erase(key);
        if (it->second.empty()) table->erase(it);
      }
    }
  }

  template <typename GotTable, typename GetFn, typename NoteFn>
  static void MatchAttrs(const AttrTable& want, const GotTable& got_table,
                         GetFn get, const char* kind, NoteFn note) {
    for (const auto& [owner, attrs] : want) {
      for (const auto& [key, value] : attrs) {
        const std::string* g = get(owner, key);
        if (g == nullptr) {
          note("missing " + std::string(kind) + " attr (" + std::to_string(owner) +
               ", " + key + ")");
        } else if (*g != value) {
          note(std::string(kind) + " attr (" + std::to_string(owner) + ", " + key +
               ") = \"" + *g + "\", want \"" + value + "\"");
        }
      }
    }
    // Reverse direction: anything the snapshot holds must be in the oracle.
    for (const auto& [owner, attrs] : got_table) {
      auto it = want.find(owner);
      for (const auto& [kid, vid] : attrs) {
        const std::string& key = AttrStr(kid);
        (void)vid;
        if (it == want.end() || it->second.count(key) == 0) {
          note("extra " + std::string(kind) + " attr (" + std::to_string(owner) +
               ", " + key + ")");
        }
      }
    }
  }

  std::unordered_set<NodeId> nodes_;
  std::unordered_map<EdgeId, OracleEdge> edges_;
  AttrTable node_attrs_;
  AttrTable edge_attrs_;
};

}  // namespace test
}  // namespace hgdb

#endif  // HISTGRAPH_TESTS_TEST_ORACLE_H_
