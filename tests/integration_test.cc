// End-to-end integration tests: the full stack on a *disk-backed* store,
// reopen-from-disk, failure injection, and the object-style traversal API.

#include <gtest/gtest.h>

#include "common/env_util.h"
#include "core/graph_manager.h"
#include "core/hist_objects.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

class DiskBackedTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = FreshScratchDir("integration_test"); }
  std::string dir_;
};

TEST_F(DiskBackedTest, FullStackOnDiskStore) {
  RandomTraceOptions opts;
  opts.num_events = 5000;
  opts.seed = 321;
  GeneratedTrace trace = GenerateRandomTrace(opts);

  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenDiskKVStore(dir_ + "/db.log", {}, &store).ok());
  GraphManagerOptions gmo;
  gmo.index.leaf_size = 500;
  gmo.index.arity = 4;
  auto gm = GraphManager::Create(store.get(), gmo);
  ASSERT_TRUE(gm.ok());
  ASSERT_TRUE(gm.value()->ApplyEvents(trace.events).ok());
  ASSERT_TRUE(gm.value()->FinalizeIndex().ok());

  const Timestamp t_max = trace.events.back().time;
  for (int i = 1; i <= 5; ++i) {
    const Timestamp t = t_max * i / 5;
    auto hist = gm.value()->GetHistGraph(t, "+node:all+edge:all");
    ASSERT_TRUE(hist.ok()) << hist.status().ToString();
    Snapshot got = gm.value()->pool().ExtractSnapshot(hist->pool_id());
    EXPECT_TRUE(got.Equals(ReplayAt(trace.events, t))) << "t=" << t;
    ASSERT_TRUE(gm.value()->Release(&hist.value()).ok());
  }
}

TEST_F(DiskBackedTest, ReopenFromDiskAfterProcessRestart) {
  RandomTraceOptions opts;
  opts.num_events = 4000;
  opts.seed = 654;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  const Timestamp t_max = trace.events.back().time;

  {
    std::unique_ptr<KVStore> store;
    ASSERT_TRUE(OpenDiskKVStore(dir_ + "/db.log", {}, &store).ok());
    auto gm = GraphManager::Create(store.get(), GraphManagerOptions{
                                                    .index = {.leaf_size = 400}});
    ASSERT_TRUE(gm.ok());
    ASSERT_TRUE(gm.value()->ApplyEvents(trace.events).ok());
    ASSERT_TRUE(gm.value()->FinalizeIndex().ok());
    ASSERT_TRUE(store->Sync().ok());
  }  // "Process exit": everything dropped.

  std::unique_ptr<KVStore> store;
  ASSERT_TRUE(OpenDiskKVStore(dir_ + "/db.log", {}, &store).ok());
  auto gm = GraphManager::Open(store.get());
  ASSERT_TRUE(gm.ok()) << gm.status().ToString();
  auto hist = gm.value()->GetHistGraph(t_max / 2, "+node:all+edge:all");
  ASSERT_TRUE(hist.ok());
  Snapshot got = gm.value()->pool().ExtractSnapshot(hist->pool_id());
  EXPECT_TRUE(got.Equals(ReplayAt(trace.events, t_max / 2)));

  // The reopened database accepts further updates and stays correct.
  std::vector<Event> more;
  Timestamp t = t_max;
  for (int i = 0; i < 600; ++i) {
    t += 1;
    more.push_back(Event::AddNode(t, 900000 + i));
  }
  ASSERT_TRUE(gm.value()->ApplyEvents(more).ok());
  auto head = gm.value()->GetHistGraph(t, "");
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(head->HasNode(900000));
  EXPECT_TRUE(head->HasNode(900000 + 599));
}

TEST_F(DiskBackedTest, MissingDeltaSurfacesAsError) {
  RandomTraceOptions opts;
  opts.num_events = 3000;
  opts.seed = 987;
  GeneratedTrace trace = GenerateRandomTrace(opts);

  auto store = NewMemKVStore();
  DeltaGraphOptions dgo;
  dgo.leaf_size = 300;
  dgo.maintain_current = false;
  auto dg = DeltaGraph::Create(store.get(), dgo);
  ASSERT_TRUE(dg.ok());
  ASSERT_TRUE(dg.value()->AppendAll(trace.events).ok());
  ASSERT_TRUE(dg.value()->Finalize().ok());

  // Sanity: queries work before the damage.
  const Timestamp mid = trace.events.back().time / 2;
  ASSERT_TRUE(dg.value()->GetSnapshot(mid).ok());

  // Delete every delta/eventlist blob: retrieval must fail cleanly with
  // NotFound/Corruption, never crash or return a wrong graph. The damage is
  // out-of-band (directly on the KVStore), so also drop the decoded-object
  // cache that would otherwise — correctly — keep serving the old bytes.
  std::vector<std::string> keys;
  store->ForEachKey("d/", [&](const Slice& k) { keys.push_back(k.ToString()); });
  ASSERT_FALSE(keys.empty());
  for (const auto& k : keys) ASSERT_TRUE(store->Delete(k).ok());
  dg.value()->SetDecodedCacheCapacity(0);
  auto result = dg.value()->GetSnapshot(mid);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound() || result.status().IsCorruption())
      << result.status().ToString();
}

TEST_F(DiskBackedTest, CorruptSkeletonRejectedOnOpen) {
  {
    std::unique_ptr<KVStore> store;
    ASSERT_TRUE(OpenDiskKVStore(dir_ + "/db.log", {}, &store).ok());
    RandomTraceOptions opts;
    opts.num_events = 1000;
    opts.seed = 7;
    GeneratedTrace trace = GenerateRandomTrace(opts);
    auto dg = DeltaGraph::Create(store.get(), DeltaGraphOptions{.leaf_size = 200});
    ASSERT_TRUE(dg.ok());
    ASSERT_TRUE(dg.value()->AppendAll(trace.events).ok());
    ASSERT_TRUE(dg.value()->Finalize().ok());
    // Corrupt the skeleton blob.
    ASSERT_TRUE(store->Put("m/skeleton", "garbage").ok());
    auto reopened = DeltaGraph::Open(store.get());
    EXPECT_FALSE(reopened.ok());
    EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status().ToString();
  }
}

// --- Object-style traversal API (paper's code snippet) -------------------------

TEST(HistObjectsTest, TraversalMirrorsPaperSnippet) {
  auto store = NewMemKVStore();
  GraphManagerOptions gmo;
  gmo.index.leaf_size = 4;
  auto gm_result = GraphManager::Create(store.get(), gmo);
  ASSERT_TRUE(gm_result.ok());
  GraphManager& gm = *gm_result.value();

  ASSERT_TRUE(gm.ApplyEvent(Event::AddNode(1, 1)).ok());
  ASSERT_TRUE(gm.ApplyEvent(
      Event::SetNodeAttr(1, 1, "name", std::nullopt, "alice")).ok());
  ASSERT_TRUE(gm.ApplyEvent(Event::AddNode(1, 2)).ok());
  ASSERT_TRUE(gm.ApplyEvent(Event::AddEdge(2, 10, 1, 2, false)).ok());
  ASSERT_TRUE(gm.ApplyEvent(
      Event::SetEdgeAttr(3, 10, "since", std::nullopt, "2024")).ok());
  ASSERT_TRUE(gm.FinalizeIndex().ok());

  /* HistGraph h1 = gm.GetHistGraph("1/2/1985", "+node:name"); */
  auto h1 = gm.GetHistGraph(3, "+node:name+edge:all");
  ASSERT_TRUE(h1.ok());

  /* List<HistNode> nodes = h1.getNodes(); */
  std::vector<HistNode> nodes = GetNodeObjs(h1.value());
  ASSERT_EQ(nodes.size(), 2u);
  std::sort(nodes.begin(), nodes.end(),
            [](const HistNode& a, const HistNode& b) { return a.id() < b.id(); });

  /* List<HistNode> neighborList = nodes.get(0).getNeighbors(); */
  std::vector<HistNode> neighbors = nodes[0].GetNeighbors();
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].id(), 2u);

  /* HistEdge ed = h1.getEdgeObj(nodes.get(0), neighborList.get(0)); */
  auto edge = GetEdgeObj(h1.value(), nodes[0], neighbors[0]);
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(edge->id(), 10u);
  EXPECT_FALSE(edge->IsDirected());
  ASSERT_NE(edge->GetAttr("since"), nullptr);
  EXPECT_EQ(*edge->GetAttr("since"), "2024");
  EXPECT_EQ(edge->GetSource().id(), 1u);
  EXPECT_EQ(edge->GetDestination().id(), 2u);

  // Attr options filtered: name kept.
  ASSERT_NE(nodes[0].GetAttr("name"), nullptr);
  EXPECT_EQ(*nodes[0].GetAttr("name"), "alice");

  // No edge between unconnected nodes.
  EXPECT_TRUE(GetEdgeObj(h1.value(), neighbors[0], neighbors[0]).status().IsNotFound());

  // Node edges list.
  EXPECT_EQ(nodes[0].GetEdges().size(), 1u);
  ASSERT_TRUE(gm.Release(&h1.value()).ok());
}

}  // namespace
}  // namespace hgdb
