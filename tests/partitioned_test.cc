// Sharded-index coverage: chunk-aligned routing invariants, the single-store
// prefix-namespace layout (Create/Open round trip), parallel per-shard ingest,
// parts-vs-merged consistency of RetrieveParts/GetSnapshotParts, the
// PartitionedRetrievalSession, and GraphPool::OverlayHistoricalParts. Every
// retrieval result is checked against the NaiveReplayOracle (tests/
// test_oracle.h), which shares no code with the sharding machinery.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "deltagraph/partitioned_delta_graph.h"
#include "exec/io_pool.h"
#include "exec/partitioned_session.h"
#include "exec/task_pool.h"
#include "graphpool/graph_pool.h"
#include "kvstore/kv_store.h"
#include "tests/test_oracle.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hgdb {
namespace {

struct PartitionedWorkload {
  std::vector<std::unique_ptr<KVStore>> stores;
  std::unique_ptr<PartitionedDeltaGraph> pdg;
  std::vector<Event> log;
};

// A small randomized sharded index: ingest happens in 1..3 AppendAll/Finalize
// rounds; the last round is sometimes left unfinalized so some shards answer
// from their recent eventlist (replay fallback) while others use their index.
PartitionedWorkload BuildPartitioned(test::SeededRng& rng, size_t shards,
                                     TaskPool* pool) {
  RandomTraceOptions topts;
  topts.num_events = 400 + rng.Uniform(600);
  topts.seed = rng.seed() * 733 + 29;
  topts.p_same_time = 0.15 + rng.NextDouble() * 0.25;
  topts.p_del_edge = 0.08 + rng.NextDouble() * 0.10;
  topts.p_node_attr = 0.12 + rng.NextDouble() * 0.15;
  topts.p_edge_attr = 0.06 + rng.NextDouble() * 0.10;
  GeneratedTrace trace = GenerateRandomTrace(topts);

  PartitionedWorkload w;
  std::vector<KVStore*> ptrs;
  for (size_t i = 0; i < shards; ++i) {
    w.stores.push_back(NewMemKVStore());
    ptrs.push_back(w.stores.back().get());
  }
  DeltaGraphOptions opts;
  opts.leaf_size = 30 + rng.Uniform(80);
  opts.arity = 2 + static_cast<int>(rng.Uniform(3));
  auto pdg = PartitionedDeltaGraph::Create(ptrs, opts);
  EXPECT_TRUE(pdg.ok());
  w.pdg = std::move(pdg).value();
  w.pdg->SetTaskPool(pool);

  const size_t rounds = 1 + rng.Uniform(3);
  size_t next = 0;
  for (size_t r = 0; r < rounds; ++r) {
    const size_t end = (r + 1 == rounds)
                           ? trace.events.size()
                           : next + (trace.events.size() - next) / 2;
    std::vector<Event> batch(trace.events.begin() + next,
                             trace.events.begin() + end);
    next = end;
    EXPECT_TRUE(w.pdg->AppendAll(batch).ok());
    const bool last = r + 1 == rounds;
    if (!last || rng.Chance(0.7)) {
      EXPECT_TRUE(w.pdg->Finalize().ok());
    }
  }
  w.log = std::move(trace.events);
  return w;
}

TEST(PartitionedTest, ChunkAlignedRouting) {
  auto store = NewMemKVStore();
  auto pdg = PartitionedDeltaGraph::Create(store.get(), 4, DeltaGraphOptions());
  ASSERT_TRUE(pdg.ok());
  auto& p = *pdg.value();

  // Every id inside one 256-id block routes to the block's shard — the
  // invariant that makes every Snapshot chunk (256-id node sets, 128-id edge
  // and attribute maps) partition-pure, which AbsorbDisjoint turns into O(1)
  // chunk adoption.
  for (uint64_t block : {0ull, 1ull, 7ull, 1000ull, (1ull << 40)}) {
    const PartitionId node_home = p.PartitionOfNode(block << 8);
    const PartitionId edge_home = p.PartitionOfEdge(block << 8);
    for (uint64_t off : {0ull, 1ull, 127ull, 128ull, 255ull}) {
      EXPECT_EQ(p.PartitionOfNode((block << 8) | off), node_home) << block;
      EXPECT_EQ(p.PartitionOfEdge((block << 8) | off), edge_home) << block;
    }
  }

  // An edge's whole history — add, attribute updates, delete — routes to one
  // shard, regardless of endpoints.
  const EdgeId e = 777;
  const PartitionId home = p.PartitionOfEdge(e);
  EXPECT_EQ(p.PartitionOf(Event::AddEdge(1, e, 5, 9999999, true)), home);
  EXPECT_EQ(p.PartitionOf(Event::SetEdgeAttr(2, e, "w", std::nullopt, "1")), home);
  EXPECT_EQ(p.PartitionOf(Event::DeleteEdge(3, e, 5, 9999999, true)), home);
  // Node events route by node id.
  EXPECT_EQ(p.PartitionOf(Event::AddNode(1, 300)), p.PartitionOfNode(300));
}

TEST(PartitionedTest, SingleStoreNamespacingAndOpenRoundTrip) {
  test::SeededRng rng(4242);
  RandomTraceOptions topts;
  topts.num_events = 500;
  topts.seed = 4242;
  GeneratedTrace trace = GenerateRandomTrace(topts);

  auto base = NewMemKVStore();
  {
    DeltaGraphOptions opts;
    opts.leaf_size = 60;
    auto pdg = PartitionedDeltaGraph::Create(base.get(), 4, opts);
    ASSERT_TRUE(pdg.ok());
    ASSERT_TRUE(pdg.value()->AppendAll(trace.events).ok());
    ASSERT_TRUE(pdg.value()->Finalize().ok());
  }

  // Layout: every key lives in a shard namespace "s<i>/" or the partition
  // metadata namespace "pm/".
  size_t checked = 0;
  base->ForEachKey("", [&](const Slice& key) {
    const std::string k(key.data(), key.size());
    const bool shard_key = k.size() > 2 && k[0] == 's' && k.find('/') != std::string::npos &&
                           k.find('/') <= 6;
    EXPECT_TRUE(shard_key || k.rfind("pm/", 0) == 0) << "stray key: " << k;
    ++checked;
  });
  EXPECT_GT(checked, 0u);

  // A second Create over the same (now non-empty) base must refuse.
  EXPECT_FALSE(PartitionedDeltaGraph::Create(base.get(), 2, DeltaGraphOptions()).ok());
  // Open of a store that was never a partitioned index must refuse.
  auto fresh = NewMemKVStore();
  EXPECT_FALSE(PartitionedDeltaGraph::Open(fresh.get()).ok());

  // Reopen and retrieve: element-identical to full replay.
  auto reopened = PartitionedDeltaGraph::Open(base.get());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->partition_count(), 4u);
  std::vector<Timestamp> times = test::RandomTimes(rng, trace.events, 4);
  times.push_back(trace.events.back().time);
  auto got = reopened.value()->GetSnapshots(times);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (size_t i = 0; i < times.size(); ++i) {
    auto oracle = test::NaiveReplayOracle::At(trace.events, times[i], kCompAll);
    EXPECT_TRUE(oracle.Matches(got.value()[i])) << "t=" << times[i];
  }
}

// The oracle sweep: shard counts x {serial, parallel} x prefetch on/off, all
// element-identical to naive replay. This is the sharded acceptance bar —
// partitioning must be invisible in the result.
TEST(PartitionedTest, RetrievalMatchesOracleAcrossShardCountsAndModes) {
  TaskPool pool4(4);
  IoPool io(3);  // Deliberately not a multiple of any shard count.
  TaskPool* const pools[] = {nullptr, &pool4};
  IoPool* const ios[] = {nullptr, &io};

  for (uint64_t seed : test::PropertySeeds(6, 7200)) {
    for (size_t shards : {1, 2, 4}) {
      test::SeededRng rng(seed + shards * 1000003);
      SCOPED_TRACE(rng.Desc() + " shards=" + std::to_string(shards));
      PartitionedWorkload w = BuildPartitioned(rng, shards, &pool4);

      std::vector<Timestamp> times = test::RandomTimes(rng, w.log, 5);
      times.push_back(w.log[rng.Uniform(w.log.size())].time);
      std::map<Timestamp, test::NaiveReplayOracle> oracles;
      for (Timestamp t : times) {
        if (oracles.count(t) == 0) {
          oracles.emplace(t, test::NaiveReplayOracle::At(w.log, t, kCompAll));
        }
      }

      for (TaskPool* pool : pools) {
        for (IoPool* iop : ios) {
          w.pdg->SetTaskPool(pool);
          w.pdg->SetIoPool(iop);
          SCOPED_TRACE("parallel=" + std::to_string(pool != nullptr) +
                       " prefetch=" + std::to_string(iop != nullptr));
          auto got = w.pdg->GetSnapshots(times);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          for (size_t i = 0; i < times.size(); ++i) {
            EXPECT_TRUE(oracles.at(times[i]).Matches(got.value()[i]))
                << "t=" << times[i];
          }
        }
      }

      // Singlepoint path.
      w.pdg->SetTaskPool(&pool4);
      w.pdg->SetIoPool(nullptr);
      auto one = w.pdg->GetSnapshot(times[0]);
      ASSERT_TRUE(one.ok());
      EXPECT_TRUE(oracles.at(times[0]).Matches(one.value()));
    }
  }
}

// Parts are element-disjoint and merge to exactly the whole: summed element
// counts equal the merged counts (no element lost, none duplicated), and the
// manual AbsorbDisjoint merge equals the replay oracle.
TEST(PartitionedTest, PartsAreDisjointAndMergeToWhole) {
  TaskPool pool(3);
  for (uint64_t seed : test::PropertySeeds(4, 8300)) {
    test::SeededRng rng(seed);
    SCOPED_TRACE(rng.Desc());
    PartitionedWorkload w = BuildPartitioned(rng, 4, &pool);

    std::vector<Timestamp> times = test::RandomTimes(rng, w.log, 4);
    auto parts = w.pdg->RetrieveParts(times);
    ASSERT_TRUE(parts.ok()) << parts.status().ToString();
    ASSERT_EQ(parts.value().size(), 4u);

    for (size_t i = 0; i < times.size(); ++i) {
      size_t node_sum = 0, edge_sum = 0;
      Snapshot merged;
      for (size_t p = 0; p < parts.value().size(); ++p) {
        node_sum += parts.value()[p][i].NodeCount();
        edge_sum += parts.value()[p][i].EdgeCount();
        merged.AbsorbDisjoint(std::move(parts.value()[p][i]));
      }
      EXPECT_EQ(merged.NodeCount(), node_sum) << "t=" << times[i];
      EXPECT_EQ(merged.EdgeCount(), edge_sum) << "t=" << times[i];
      auto oracle = test::NaiveReplayOracle::At(w.log, times[i], kCompAll);
      EXPECT_TRUE(oracle.Matches(merged)) << "t=" << times[i];
    }
  }
}

TEST(PartitionedSessionTest, BatchedRequestsMatchOracle) {
  TaskPool pool(4);
  IoPool io(2);
  for (uint64_t seed : test::PropertySeeds(4, 9400)) {
    test::SeededRng rng(seed);
    SCOPED_TRACE(rng.Desc());
    PartitionedWorkload w = BuildPartitioned(rng, 3, &pool);
    w.pdg->SetIoPool(&io);

    std::vector<Timestamp> times_a = test::RandomTimes(rng, w.log, 4);
    std::vector<Timestamp> times_b = test::RandomTimes(rng, w.log, 3);

    PartitionedRetrievalSession session(w.pdg.get(), &pool);
    auto* a = session.Submit(times_a);
    auto* b = session.Submit(times_b, kCompStruct);
    auto* empty = session.Submit({});
    ASSERT_TRUE(session.Wait().ok());
    ASSERT_TRUE(session.Wait().ok());  // Idempotent.

    ASSERT_TRUE(a->result.ok()) << a->result.status().ToString();
    ASSERT_EQ(a->result.value().size(), times_a.size());
    for (size_t i = 0; i < times_a.size(); ++i) {
      auto oracle = test::NaiveReplayOracle::At(w.log, times_a[i], kCompAll);
      EXPECT_TRUE(oracle.Matches(a->result.value()[i])) << "t=" << times_a[i];
    }
    ASSERT_TRUE(b->result.ok()) << b->result.status().ToString();
    for (size_t i = 0; i < times_b.size(); ++i) {
      auto oracle = test::NaiveReplayOracle::At(w.log, times_b[i], kCompStruct);
      EXPECT_TRUE(oracle.Matches(b->result.value()[i])) << "t=" << times_b[i];
    }
    ASSERT_TRUE(empty->result.ok());
    EXPECT_TRUE(empty->result.value().empty());
  }
}

// OverlayHistoricalParts(parts) must equal OverlayHistorical(merged): same
// membership, same attribute values, one pool id either way.
TEST(GraphPoolPartsTest, OverlayPartsEquivalentToOverlayMerged) {
  TaskPool pool(2);
  test::SeededRng rng(11500);
  PartitionedWorkload w = BuildPartitioned(rng, 4, &pool);
  const Timestamp t = w.log[w.log.size() / 2].time;

  auto parts = w.pdg->GetSnapshotParts(t);
  ASSERT_TRUE(parts.ok());
  Snapshot merged;
  for (Snapshot& p : parts.value()) {
    Snapshot copy = p;  // Keep parts usable for the parts overlay below.
    merged.AbsorbDisjoint(std::move(copy));
  }

  GraphPool pool_a, pool_b;
  auto id_a = pool_a.OverlayHistoricalParts(parts.value());
  auto id_b = pool_b.OverlayHistorical(merged);
  ASSERT_TRUE(id_a.ok());
  ASSERT_TRUE(id_b.ok());

  Snapshot got_a = pool_a.ExtractSnapshot(id_a.value());
  Snapshot got_b = pool_b.ExtractSnapshot(id_b.value());
  EXPECT_EQ(got_a.NodeCount(), got_b.NodeCount());
  EXPECT_EQ(got_a.EdgeCount(), got_b.EdgeCount());
  auto oracle = test::NaiveReplayOracle::At(w.log, t, kCompAll);
  EXPECT_TRUE(oracle.Matches(got_a));
  EXPECT_TRUE(oracle.Matches(got_b));
}

}  // namespace
}  // namespace hgdb
