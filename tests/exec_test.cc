// Tests for the parallel plan-execution subsystem (src/exec/): TaskPool
// semantics, executor determinism against the serial visitor across seeds and
// thread counts, batched RetrievalSessions, and concurrent-retrieval stress
// (the latter two double as the ThreadSanitizer workload in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_set>

#include "deltagraph/delta_graph.h"
#include "exec/io_pool.h"
#include "exec/parallel_executor.h"
#include "exec/prefetcher.h"
#include "exec/retrieval_session.h"
#include "exec/task_pool.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

TEST(TaskPoolTest, RunsAllSpawnedTasks) {
  TaskPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 200; ++i) {
    group.Spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 200);
}

TEST(TaskPoolTest, NestedSpawnsAreAwaited) {
  TaskPool pool(3);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Spawn([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < 4; ++j) {
        group.Spawn([&] {
          ran.fetch_add(1, std::memory_order_relaxed);
          group.Spawn([&] { ran.fetch_add(1, std::memory_order_relaxed); });
        });
      }
    });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 8 + 8 * 4 + 8 * 4);
}

TEST(TaskPoolTest, SerialPoolRunsInline) {
  TaskPool pool(1);  // No workers: Submit executes before returning.
  bool ran = false;
  pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);
  TaskGroup group(&pool);
  int order_probe = 0;
  group.Spawn([&order_probe] { order_probe = 42; });
  EXPECT_EQ(order_probe, 42);  // Already done, not merely queued.
  group.Wait();
}

TEST(TaskPoolTest, WaitIsReusable) {
  TaskPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  group.Spawn([&] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 1);
  group.Spawn([&] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 2);
}

// ---------------------------------------------------------------------------
// Executor determinism: parallel == serial, element for element
// ---------------------------------------------------------------------------

struct BuiltIndex {
  std::unique_ptr<KVStore> store;
  std::unique_ptr<DeltaGraph> dg;
  std::vector<Event> events;
};

BuiltIndex BuildRandomIndex(uint64_t seed, size_t num_events,
                            size_t post_finalize_events = 0,
                            const KVStoreOptions& kv_opts = {}) {
  RandomTraceOptions topts;
  topts.num_events = num_events + post_finalize_events;
  topts.seed = seed;
  GeneratedTrace trace = GenerateRandomTrace(topts);

  BuiltIndex built;
  built.store = NewMemKVStore(kv_opts);
  DeltaGraphOptions opts;
  opts.leaf_size = std::max<size_t>(50, num_events / 24);  // Many leaves.
  opts.arity = 2;
  opts.functions = {"intersection"};
  auto dg = DeltaGraph::Create(built.store.get(), opts);
  EXPECT_TRUE(dg.ok());
  built.dg = std::move(dg).value();
  std::vector<Event> indexed(trace.events.begin(),
                             trace.events.begin() + num_events);
  EXPECT_TRUE(built.dg->AppendAll(indexed).ok());
  EXPECT_TRUE(built.dg->Finalize().ok());
  // Trailing un-finalized events exercise the kApplyRecentEvents step —
  // including events whose timestamp equals the last indexed event's, which
  // Finalize's boundary holdback keeps strictly inside the recent interval.
  for (size_t i = num_events; i < trace.events.size(); ++i) {
    EXPECT_TRUE(built.dg->Append(trace.events[i]).ok());
  }
  built.events = std::move(trace.events);
  return built;
}

TEST(ParallelExecutorTest, MatchesSerialAcrossSeedsAndThreadCounts) {
  TaskPool pool2(2), pool8(8);
  for (uint64_t seed : {11u, 1234u, 990017u}) {
    BuiltIndex built = BuildRandomIndex(seed, 3000, /*post_finalize_events=*/150);
    test::SeededRng rng(seed * 31 + 7);
    for (unsigned components : {unsigned{kCompAll}, unsigned{kCompStruct}}) {
      for (int k : {2, 5, 9}) {
        const std::vector<Timestamp> times = test::RandomTimes(rng, built.events, k);

        built.dg->SetTaskPool(nullptr);  // Serial baseline.
        auto serial = built.dg->GetSnapshots(times, components);
        ASSERT_TRUE(serial.ok()) << serial.status().ToString();

        for (TaskPool* pool : {&pool2, &pool8}) {
          built.dg->SetTaskPool(pool);
          auto parallel = built.dg->GetSnapshots(times, components);
          ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
          ASSERT_EQ(parallel.value().size(), serial.value().size());
          for (size_t i = 0; i < times.size(); ++i) {
            EXPECT_TRUE(parallel.value()[i].Equals(serial.value()[i]))
                << "seed=" << seed << " threads=" << pool->parallelism()
                << " components=" << components << " t=" << times[i] << "\n"
                << parallel.value()[i].DiffString(serial.value()[i]);
          }
        }
        // A parallelism-1 pool must take the serial path (and agree).
        TaskPool pool1(1);
        built.dg->SetTaskPool(&pool1);
        auto one = built.dg->GetSnapshots(times, components);
        ASSERT_TRUE(one.ok());
        for (size_t i = 0; i < times.size(); ++i) {
          EXPECT_TRUE(one.value()[i].Equals(serial.value()[i]));
        }
        built.dg->SetTaskPool(nullptr);
      }
    }
    // Ground truth once per seed: the parallel result equals exact replay.
    TaskPool pool4(4);
    built.dg->SetTaskPool(&pool4);
    const std::vector<Timestamp> times = test::RandomTimes(rng, built.events, 6);
    auto snaps = built.dg->GetSnapshots(times, kCompAll);
    ASSERT_TRUE(snaps.ok());
    for (size_t i = 0; i < times.size(); ++i) {
      Snapshot expected = ReplayAt(built.events, times[i]);
      EXPECT_TRUE(snaps.value()[i].Equals(expected))
          << "t=" << times[i] << "\n" << snaps.value()[i].DiffString(expected);
    }
  }
}

TEST(ParallelExecutorTest, MaterializedStartsMatchSerial) {
  BuiltIndex built = BuildRandomIndex(77, 2500);
  ASSERT_TRUE(built.dg->MaterializeDepth(1).ok());
  test::SeededRng rng(99);
  const std::vector<Timestamp> times = test::RandomTimes(rng, built.events, 7);

  built.dg->SetTaskPool(nullptr);
  auto serial = built.dg->GetSnapshots(times, kCompAll);
  ASSERT_TRUE(serial.ok());

  TaskPool pool4(4);
  built.dg->SetTaskPool(&pool4);
  auto parallel = built.dg->GetSnapshots(times, kCompAll);
  ASSERT_TRUE(parallel.ok());
  for (size_t i = 0; i < times.size(); ++i) {
    EXPECT_TRUE(parallel.value()[i].Equals(serial.value()[i]))
        << parallel.value()[i].DiffString(serial.value()[i]);
  }
}

TEST(ParallelExecutorTest, PlanHasBranchesDetectsLinearChains) {
  BuiltIndex built = BuildRandomIndex(5, 1500);
  auto single = built.dg->PlanFor({built.events.back().time / 2});
  ASSERT_TRUE(single.ok());
  EXPECT_FALSE(PlanHasBranches(single.value()));  // Singlepoint = linear.
}

// ---------------------------------------------------------------------------
// Prefetch pipeline
// ---------------------------------------------------------------------------

TEST(PrefetchTest, PlanPreScanDedupesAndSkipsInMemorySteps) {
  BuiltIndex built = BuildRandomIndex(31, 2000, /*post_finalize_events=*/60);
  test::SeededRng rng(3);
  auto plan = built.dg->PlanFor(test::RandomTimes(rng, built.events, 6));
  ASSERT_TRUE(plan.ok());
  const std::vector<PlanFetch> fetches = CollectPlanFetches(plan.value());
  ASSERT_FALSE(fetches.empty());
  std::unordered_set<int32_t> seen;
  for (const PlanFetch& f : fetches) {
    EXPECT_TRUE(seen.insert(f.edge).second) << "duplicate edge " << f.edge;
    EXPECT_EQ(built.dg->skeleton().edge(f.edge).is_eventlist, f.is_eventlist);
  }
}

// The acceptance property of the async fetch layer: prefetch on/off,
// serial/parallel, and fetch latency 0/100us must all produce
// element-identical snapshots (prefetch only warms the cache; it never
// changes apply order).
TEST(PrefetchTest, PrefetchOnOffSerialParallelLatencyAllAgree) {
  for (uint32_t latency_us : {0u, 100u}) {
    KVStoreOptions kv;
    kv.read_latency_us = latency_us;
    BuiltIndex built =
        BuildRandomIndex(4242 + latency_us, 2200, /*post_finalize_events=*/120, kv);
    built.dg->SetDecodedCacheCapacity(0);  // Every run pays real fetches.
    test::SeededRng rng(17);
    const std::vector<Timestamp> times = test::RandomTimes(rng, built.events, 6);

    built.dg->SetTaskPool(nullptr);
    built.dg->SetIoPool(nullptr);  // Blocking-fetch serial baseline.
    auto baseline = built.dg->GetSnapshots(times, kCompAll);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    for (size_t i = 0; i < times.size(); ++i) {
      EXPECT_TRUE(baseline.value()[i].Equals(ReplayAt(built.events, times[i])))
          << "baseline diverges from replay at t=" << times[i];
    }

    TaskPool pool4(4);
    IoPool io3(3);
    for (TaskPool* pool : std::vector<TaskPool*>{nullptr, &pool4}) {
      for (IoPool* io : std::vector<IoPool*>{nullptr, &io3}) {
        built.dg->SetTaskPool(pool);
        built.dg->SetIoPool(io);
        auto got = built.dg->GetSnapshots(times, kCompAll);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        for (size_t i = 0; i < times.size(); ++i) {
          EXPECT_TRUE(got.value()[i].Equals(baseline.value()[i]))
              << "latency=" << latency_us << "us pool=" << (pool ? 4 : 1)
              << " prefetch=" << (io != nullptr) << " t=" << times[i] << "\n"
              << got.value()[i].DiffString(baseline.value()[i]);
        }
      }
    }
  }
}

// Sessions share one prefetched fetch pin across requests; results must match
// per-request direct retrieval with prefetching disabled.
TEST(PrefetchTest, SessionWithPrefetchMatchesBlockingRetrieval) {
  KVStoreOptions kv;
  kv.read_latency_us = 50;
  BuiltIndex built = BuildRandomIndex(777, 2000, /*post_finalize_events=*/80, kv);
  built.dg->SetDecodedCacheCapacity(0);
  test::SeededRng rng(23);
  std::vector<std::vector<Timestamp>> batches;
  for (int i = 0; i < 4; ++i) batches.push_back(test::RandomTimes(rng, built.events, 4));

  TaskPool pool(4);
  IoPool io(2);
  built.dg->SetIoPool(&io);
  RetrievalSession session(built.dg.get(), &pool);
  std::vector<RetrievalSession::Request*> tickets;
  for (const auto& b : batches) tickets.push_back(session.Submit(b));
  ASSERT_TRUE(session.Wait().ok());

  built.dg->SetTaskPool(nullptr);
  built.dg->SetIoPool(nullptr);
  for (size_t i = 0; i < batches.size(); ++i) {
    auto expect = built.dg->GetSnapshots(batches[i], kCompAll);
    ASSERT_TRUE(expect.ok());
    for (size_t j = 0; j < batches[i].size(); ++j) {
      EXPECT_TRUE(tickets[i]->result.value()[j].Equals(expect.value()[j]))
          << "request " << i << " time index " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// RetrievalSession
// ---------------------------------------------------------------------------

// Alternate components across a session's requests.
unsigned i_th_components(size_t i) {
  return i % 2 == 0 ? unsigned{kCompAll} : unsigned{kCompStruct};
}

TEST(RetrievalSessionTest, BatchedRequestsMatchDirectRetrieval) {
  BuiltIndex built = BuildRandomIndex(321, 2500, 100);
  test::SeededRng rng(5);
  TaskPool pool(4);

  std::vector<std::vector<Timestamp>> batches;
  for (int i = 0; i < 5; ++i) batches.push_back(test::RandomTimes(rng, built.events, 4));

  RetrievalSession session(built.dg.get(), &pool);
  std::vector<RetrievalSession::Request*> tickets;
  for (const auto& b : batches) {
    tickets.push_back(session.Submit(b, i_th_components(tickets.size())));
  }
  ASSERT_TRUE(session.Wait().ok());

  built.dg->SetTaskPool(nullptr);
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_TRUE(tickets[i]->result.ok()) << tickets[i]->result.status().ToString();
    auto expect = built.dg->GetSnapshots(batches[i], i_th_components(i));
    ASSERT_TRUE(expect.ok());
    ASSERT_EQ(tickets[i]->result.value().size(), batches[i].size());
    for (size_t j = 0; j < batches[i].size(); ++j) {
      EXPECT_TRUE(tickets[i]->result.value()[j].Equals(expect.value()[j]))
          << "request " << i << " time index " << j;
    }
  }
}

TEST(RetrievalSessionTest, EmptyAndUnfinalizedIndexFallBack) {
  auto store = NewMemKVStore();
  DeltaGraphOptions opts;
  opts.leaf_size = 10000;  // Nothing gets cut: skeleton stays empty.
  auto dg = DeltaGraph::Create(store.get(), opts);
  ASSERT_TRUE(dg.ok());
  RandomTraceOptions topts;
  topts.num_events = 200;
  GeneratedTrace trace = GenerateRandomTrace(topts);
  ASSERT_TRUE(dg.value()->AppendAll(trace.events).ok());

  TaskPool pool(2);
  RetrievalSession session(dg.value().get(), &pool);
  auto* empty = session.Submit({});
  auto* replayed = session.Submit({trace.events.back().time});
  ASSERT_TRUE(session.Wait().ok());
  EXPECT_TRUE(empty->result.ok());
  EXPECT_EQ(empty->result.value().size(), 0u);
  ASSERT_TRUE(replayed->result.ok());
  EXPECT_TRUE(replayed->result.value()[0].Equals(
      ReplayAt(trace.events, trace.events.back().time)));
}

// ---------------------------------------------------------------------------
// Concurrency stress (the TSan workload)
// ---------------------------------------------------------------------------

TEST(ExecStressTest, ConcurrentSessionsOverOneIndex) {
  BuiltIndex built = BuildRandomIndex(2024, 2500, 120);
  built.dg->SetDecodedCacheCapacity(4);  // Force LRU churn + eviction races.
  TaskPool pool(4);
  built.dg->SetTaskPool(&pool);

  constexpr int kDrivers = 4;
  constexpr int kRoundsPerDriver = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      test::SeededRng rng(9000 + d);
      for (int round = 0; round < kRoundsPerDriver; ++round) {
        RetrievalSession session(built.dg.get(), &pool);
        std::vector<std::vector<Timestamp>> batches;
        std::vector<RetrievalSession::Request*> tickets;
        for (int r = 0; r < 3; ++r) {
          batches.push_back(test::RandomTimes(rng, built.events, 3 + r));
          tickets.push_back(session.Submit(batches.back()));
        }
        if (!session.Wait().ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t r = 0; r < tickets.size(); ++r) {
          for (size_t j = 0; j < batches[r].size(); ++j) {
            Snapshot expected = ReplayAt(built.events, batches[r][j]);
            if (!tickets[r]->result.value()[j].Equals(expected)) {
              failures.fetch_add(1);
              ADD_FAILURE() << "driver " << d << " round " << round << " req " << r
                            << " t=" << batches[r][j] << "\n"
                            << tickets[r]->result.value()[j].DiffString(expected);
            }
          }
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ExecStressTest, ConcurrentDirectGetSnapshots) {
  BuiltIndex built = BuildRandomIndex(555, 2000, 80);
  TaskPool pool(3);
  built.dg->SetTaskPool(&pool);

  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&, d] {
      test::SeededRng rng(70 + d);
      for (int round = 0; round < 4; ++round) {
        // Mix multipoint with singlepoint (the latter contends on the
        // SSSP plan cache).
        const int k = (round % 2 == 0) ? 4 : 1;
        const std::vector<Timestamp> times = test::RandomTimes(rng, built.events, k);
        auto snaps = built.dg->GetSnapshots(times, kCompAll);
        if (!snaps.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < times.size(); ++i) {
          if (!snaps.value()[i].Equals(ReplayAt(built.events, times[i]))) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace hgdb
