#include <gtest/gtest.h>

#include "core/graph_manager.h"
#include "core/query_manager.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

// --- AttrOptions (Table 1) ----------------------------------------------------

TEST(AttrOptionsTest, DefaultIsStructureOnly) {
  auto opts = AttrOptions::Parse("");
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts->Components(), kCompStruct);
  EXPECT_FALSE(opts->KeepNodeAttr("x"));
}

TEST(AttrOptionsTest, PaperExample) {
  // "+node:all-node:salary+edge:name": all node attrs except salary, plus
  // the edge attribute name.
  auto opts = AttrOptions::Parse("+node:all-node:salary+edge:name");
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts->Components(), kCompStruct | kCompNodeAttr | kCompEdgeAttr);
  EXPECT_TRUE(opts->KeepNodeAttr("job"));
  EXPECT_FALSE(opts->KeepNodeAttr("salary"));
  EXPECT_TRUE(opts->KeepEdgeAttr("name"));
  EXPECT_FALSE(opts->KeepEdgeAttr("weight"));
}

TEST(AttrOptionsTest, IncludeOverridesMinusAll) {
  auto opts = AttrOptions::Parse("+node:attr1");
  ASSERT_TRUE(opts.ok());
  EXPECT_TRUE(opts->KeepNodeAttr("attr1"));
  EXPECT_FALSE(opts->KeepNodeAttr("attr2"));
  EXPECT_EQ(opts->Components() & kCompNodeAttr, kCompNodeAttr + 0u);
}

TEST(AttrOptionsTest, RejectsMalformed) {
  EXPECT_FALSE(AttrOptions::Parse("node:all").ok());
  EXPECT_FALSE(AttrOptions::Parse("+nodeall").ok());
  EXPECT_FALSE(AttrOptions::Parse("+vertex:all").ok());
  EXPECT_FALSE(AttrOptions::Parse("+node:").ok());
}

// --- TimeExpression -------------------------------------------------------------

TEST(TimeExpressionTest, ParseAndEvaluate) {
  auto expr = TimeExpression::Parse({100, 200}, "t0 & !t1");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->Evaluate({true, false}));
  EXPECT_FALSE(expr->Evaluate({true, true}));
  EXPECT_FALSE(expr->Evaluate({false, false}));
}

TEST(TimeExpressionTest, PrecedenceAndParens) {
  auto expr = TimeExpression::Parse({1, 2, 3}, "t0 | t1 & t2");
  ASSERT_TRUE(expr.ok());
  // '&' binds tighter than '|'.
  EXPECT_TRUE(expr->Evaluate({true, false, false}));
  EXPECT_FALSE(expr->Evaluate({false, true, false}));
  EXPECT_TRUE(expr->Evaluate({false, true, true}));

  auto expr2 = TimeExpression::Parse({1, 2, 3}, "(t0 | t1) & t2");
  ASSERT_TRUE(expr2.ok());
  EXPECT_FALSE(expr2->Evaluate({true, false, false}));
  EXPECT_TRUE(expr2->Evaluate({true, false, true}));
}

TEST(TimeExpressionTest, RejectsBadInput) {
  EXPECT_FALSE(TimeExpression::Parse({1}, "t1").ok());       // Out of range.
  EXPECT_FALSE(TimeExpression::Parse({1}, "t0 &").ok());     // Dangling op.
  EXPECT_FALSE(TimeExpression::Parse({1}, "(t0").ok());      // Missing paren.
  EXPECT_FALSE(TimeExpression::Parse({1}, "x0").ok());       // Bad token.
  EXPECT_FALSE(TimeExpression::Parse({1}, "t0 t0").ok());    // Trailing input.
}

// --- GraphManager end-to-end -----------------------------------------------------

class GraphManagerTest : public ::testing::Test {
 protected:
  void Build(size_t num_events = 4000, uint64_t seed = 99, size_t leaf_size = 400) {
    RandomTraceOptions opts;
    opts.num_events = num_events;
    opts.seed = seed;
    trace_ = GenerateRandomTrace(opts);
    store_ = NewMemKVStore();
    GraphManagerOptions gmo;
    gmo.index.leaf_size = leaf_size;
    auto gm = GraphManager::Create(store_.get(), gmo);
    ASSERT_TRUE(gm.ok());
    gm_ = std::move(gm).value();
    ASSERT_TRUE(gm_->ApplyEvents(trace_.events).ok());
    ASSERT_TRUE(gm_->FinalizeIndex().ok());
  }

  GeneratedTrace trace_;
  std::unique_ptr<KVStore> store_;
  std::unique_ptr<GraphManager> gm_;
};

TEST_F(GraphManagerTest, GetHistGraphMatchesReplay) {
  Build();
  const Timestamp t_max = trace_.events.back().time;
  for (int i = 1; i <= 8; ++i) {
    const Timestamp t = t_max * i / 9;
    auto hist = gm_->GetHistGraph(t, "+node:all+edge:all");
    ASSERT_TRUE(hist.ok()) << hist.status().ToString();
    Snapshot got = gm_->pool().ExtractSnapshot(hist->pool_id());
    Snapshot expected = ReplayAt(trace_.events, t);
    EXPECT_TRUE(got.Equals(expected)) << "t=" << t << "\n" << got.DiffString(expected);
    ASSERT_TRUE(gm_->Release(&hist.value()).ok());
  }
}

TEST_F(GraphManagerTest, StructureOnlyRetrievalHasNoAttrs) {
  Build();
  const Timestamp t = trace_.events.back().time / 2;
  auto hist = gm_->GetHistGraph(t, "");
  ASSERT_TRUE(hist.ok());
  Snapshot got = gm_->pool().ExtractSnapshot(hist->pool_id());
  Snapshot expected = ReplayAt(trace_.events, t, kCompStruct);
  EXPECT_TRUE(got.Equals(expected)) << got.DiffString(expected);
}

TEST_F(GraphManagerTest, AttrFilteringDropsExcludedKeys) {
  Build();
  const Timestamp t = trace_.events.back().time;
  auto hist = gm_->GetHistGraph(t, "+node:all-node:attr0");
  ASSERT_TRUE(hist.ok());
  Snapshot got = gm_->pool().ExtractSnapshot(hist->pool_id());
  for (const auto& [n, attrs] : got.node_attrs()) {
    EXPECT_FALSE(attrs.contains("attr0")) << "node " << n;
  }
  EXPECT_EQ(got.EdgeAttrCount(), 0u);
  // But some other node attrs survived.
  Snapshot expected = ReplayAt(trace_.events, t);
  if (expected.NodeAttrCount() > 0) {
    EXPECT_GT(got.NodeAttrCount(), 0u);
  }
}

TEST_F(GraphManagerTest, MultipointSharesPool) {
  Build();
  const Timestamp t_max = trace_.events.back().time;
  std::vector<Timestamp> times;
  for (int i = 1; i <= 6; ++i) times.push_back(t_max * i / 7);
  auto graphs = gm_->GetHistGraphs(times, "+node:all");
  ASSERT_TRUE(graphs.ok());
  ASSERT_EQ(graphs->size(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    Snapshot got = gm_->pool().ExtractSnapshot((*graphs)[i].pool_id());
    Snapshot expected = ReplayAt(trace_.events, times[i], kCompStruct | kCompNodeAttr);
    EXPECT_TRUE(got.Equals(expected)) << got.DiffString(expected);
  }
  for (auto& g : graphs.value()) ASSERT_TRUE(gm_->Release(&g).ok());
  gm_->RunCleaner();
}

TEST_F(GraphManagerTest, TimeExpressionDifference) {
  Build();
  const Timestamp t_max = trace_.events.back().time;
  const Timestamp t1 = t_max / 3, t2 = 2 * t_max / 3;
  auto expr = TimeExpression::Parse({t1, t2}, "t1 & !t0");  // Added between t1,t2.
  ASSERT_TRUE(expr.ok());
  auto hist = gm_->GetHistGraph(*expr, "+node:all+edge:all");
  ASSERT_TRUE(hist.ok()) << hist.status().ToString();
  Snapshot got = gm_->pool().ExtractSnapshot(hist->pool_id());

  Snapshot g1 = ReplayAt(trace_.events, t1);
  Snapshot g2 = ReplayAt(trace_.events, t2);
  for (NodeId n : got.nodes()) {
    EXPECT_TRUE(g2.HasNode(n) && !g1.HasNode(n)) << "node " << n;
  }
  size_t expected_nodes = 0;
  for (NodeId n : g2.nodes()) {
    if (!g1.HasNode(n)) ++expected_nodes;
  }
  EXPECT_EQ(got.NodeCount(), expected_nodes);
}

TEST_F(GraphManagerTest, IntervalGraphContainsAddedElementsAndTransients) {
  Build();
  const Timestamp t_max = trace_.events.back().time;
  const Timestamp ts = t_max / 4, te = 3 * t_max / 4;
  auto hist = gm_->GetHistGraphInterval(ts, te, "+node:all");
  ASSERT_TRUE(hist.ok()) << hist.status().ToString();
  Snapshot got = gm_->pool().ExtractSnapshot(hist->pool_id());

  size_t expected_new_nodes = 0, expected_transients = 0;
  for (const auto& e : trace_.events) {
    if (e.time < ts || e.time >= te) continue;
    if (e.type == EventType::kAddNode) ++expected_new_nodes;
    if (e.type == EventType::kTransientEdge) ++expected_transients;
  }
  // Transient nodes from TransientEdge events are not nodes; count added
  // nodes (synthetic transient edges contribute edges, not nodes).
  EXPECT_EQ(got.NodeCount(), expected_new_nodes);
  size_t transient_edges = 0;
  for (const auto& [e, attrs] : got.edge_attrs()) {
    if (attrs.contains("__transient")) ++transient_edges;
  }
  EXPECT_EQ(transient_edges, expected_transients);
}

TEST_F(GraphManagerTest, GetEventsWindow) {
  Build();
  const Timestamp t_max = trace_.events.back().time;
  auto events = gm_->GetEvents(t_max / 2, t_max, /*include_transient=*/false);
  ASSERT_TRUE(events.ok());
  for (const auto& e : events->events()) {
    EXPECT_FALSE(e.is_transient());
    EXPECT_GE(e.time, t_max / 2);
    EXPECT_LT(e.time, t_max);
  }
  EXPECT_TRUE(events->IsChronological());
}

TEST_F(GraphManagerTest, DependentOverlayKicksInNearCurrent) {
  Build(3000, 7, 250);
  const Timestamp t_max = trace_.events.back().time;
  // A snapshot very near the end barely differs from the current graph.
  auto hist = gm_->GetHistGraph(t_max - 1, "+node:all+edge:all");
  ASSERT_TRUE(hist.ok());
  const auto& slot = gm_->pool().slots()[hist->pool_id()];
  EXPECT_EQ(slot.dep, kCurrentGraph);
  // And it still extracts exactly.
  Snapshot got = gm_->pool().ExtractSnapshot(hist->pool_id());
  Snapshot expected = ReplayAt(trace_.events, t_max - 1);
  EXPECT_TRUE(got.Equals(expected)) << got.DiffString(expected);
}

TEST_F(GraphManagerTest, MaterializedBasesServeAsDependencies) {
  Build(5000, 83, 300);
  ASSERT_TRUE(gm_->MaterializeDepth(1).ok());
  // A time point near a materialized interior node's coverage: the snapshot
  // should overlay as dependent on SOME base (current or materialized) and
  // still extract exactly.
  const Timestamp t_max = trace_.events.back().time;
  size_t dependent_count = 0;
  for (int i = 1; i <= 8; ++i) {
    const Timestamp t = t_max * i / 9;
    auto hist = gm_->GetHistGraph(t, "+node:all+edge:all");
    ASSERT_TRUE(hist.ok());
    Snapshot got = gm_->pool().ExtractSnapshot(hist->pool_id());
    Snapshot expected = ReplayAt(trace_.events, t);
    ASSERT_TRUE(got.Equals(expected)) << "t=" << t;
    if (gm_->pool().slots()[hist->pool_id()].dep >= 0) ++dependent_count;
  }
  // The final timepoints at least are close to the current graph.
  EXPECT_GE(dependent_count, 1u);
}

TEST_F(GraphManagerTest, ReopenServesQueries) {
  Build();
  const Timestamp t_max = trace_.events.back().time;
  gm_.reset();
  auto gm = GraphManager::Open(store_.get());
  ASSERT_TRUE(gm.ok()) << gm.status().ToString();
  auto hist = gm.value()->GetHistGraph(t_max / 2, "+node:all+edge:all");
  ASSERT_TRUE(hist.ok());
  Snapshot got = gm.value()->pool().ExtractSnapshot(hist->pool_id());
  EXPECT_TRUE(got.Equals(ReplayAt(trace_.events, t_max / 2)));
}

// --- QueryManager ---------------------------------------------------------------

TEST(QueryManagerTest, ExternalIdTranslation) {
  auto store = NewMemKVStore();
  GraphManagerOptions gmo;
  gmo.index.leaf_size = 10;
  auto gm = GraphManager::Create(store.get(), gmo);
  ASSERT_TRUE(gm.ok());
  QueryManager qm(gm.value().get());

  ASSERT_TRUE(qm.AddNode(1, "alice", {{"job", "analyst"}}).ok());
  ASSERT_TRUE(qm.AddNode(1, "bob").ok());
  auto edge = qm.AddEdge(2, "alice", "bob");
  ASSERT_TRUE(edge.ok());
  EXPECT_FALSE(qm.AddEdge(2, "alice", "carol").ok());  // Unknown id.

  auto alice = qm.Resolve("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(qm.ExternalName(*alice).ValueOr("?"), "alice");
  EXPECT_EQ(qm.InternNode("alice"), *alice);  // Stable.

  auto hist = gm.value()->GetHistGraph(2, "+node:all");
  ASSERT_TRUE(hist.ok());
  EXPECT_TRUE(hist->HasNode(*alice));
  ASSERT_NE(hist->GetNodeAttr(*alice, "job"), nullptr);
  EXPECT_EQ(*hist->GetNodeAttr(*alice, "job"), "analyst");
}

}  // namespace
}  // namespace hgdb
