#include <gtest/gtest.h>

#include "deltagraph/planner.h"
#include "workload/generators.h"

namespace hgdb {
namespace {

// Hand-built skeleton:
//
//        SR (super-root, empty)
//        |
//        R (root)
//       /   .
//      A     B        (interior, arity 2)
//     /|     |.
//    L0 L1 L2 L3      (leaves, boundaries 10/20/30/40)
//    L0-L1-L2-L3      (eventlist edges)
//
// Delta byte sizes are chosen so path choices are easy to reason about.
class PlannerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SkeletonNode sr;
    sr.is_super_root = true;
    sr_ = skel_.AddNode(sr);
    skel_.SetSuperRoot(sr_);

    auto leaf = [&](Timestamp boundary) {
      SkeletonNode n;
      n.is_leaf = true;
      n.level = 1;
      n.boundary_time = boundary;
      n.element_count = 100;
      return skel_.AddNode(n);
    };
    l0_ = leaf(10);
    l1_ = leaf(20);
    l2_ = leaf(30);
    l3_ = leaf(40);

    SkeletonNode interior;
    interior.level = 2;
    a_ = skel_.AddNode(interior);
    b_ = skel_.AddNode(interior);
    SkeletonNode root;
    root.level = 3;
    r_ = skel_.AddNode(root);

    auto delta_edge = [&](int32_t from, int32_t to, uint64_t bytes) {
      SkeletonEdge e;
      e.from = from;
      e.to = to;
      e.delta_id = next_id_++;
      e.sizes.bytes[0] = bytes;
      return skel_.AddEdge(e);
    };
    auto el_edge = [&](int32_t from, int32_t to, uint64_t bytes) {
      SkeletonEdge e;
      e.from = from;
      e.to = to;
      e.is_eventlist = true;
      e.delta_id = next_id_++;
      e.sizes.bytes[0] = bytes;
      return skel_.AddEdge(e);
    };
    e_sr_r_ = delta_edge(sr_, r_, 50);
    e_r_a_ = delta_edge(r_, a_, 100);
    e_r_b_ = delta_edge(r_, b_, 100);
    e_a_l0_ = delta_edge(a_, l0_, 200);
    e_a_l1_ = delta_edge(a_, l1_, 200);
    e_b_l2_ = delta_edge(b_, l2_, 200);
    e_b_l3_ = delta_edge(b_, l3_, 200);
    e_l01_ = el_edge(l0_, l1_, 1000);
    e_l12_ = el_edge(l1_, l2_, 1000);
    e_l23_ = el_edge(l2_, l3_, 1000);
  }

  PlannerContext Ctx() {
    PlannerContext ctx;
    ctx.skeleton = &skel_;
    return ctx;
  }

  // Collects (kind, edge) pairs in execution order for a linear plan.
  static std::vector<PlanStep> LinearSteps(const Plan& plan) {
    std::vector<PlanStep> steps;
    const PlanNode* n = plan.root.get();
    while (n != nullptr && !n->children.empty()) {
      EXPECT_EQ(n->children.size(), 1u);
      steps.push_back(n->children[0].first);
      n = n->children[0].second.get();
    }
    return steps;
  }

  Skeleton skel_;
  DeltaId next_id_ = 1;
  int32_t sr_, l0_, l1_, l2_, l3_, a_, b_, r_;
  int32_t e_sr_r_, e_r_a_, e_r_b_, e_a_l0_, e_a_l1_, e_b_l2_, e_b_l3_;
  int32_t e_l01_, e_l12_, e_l23_;
};

TEST_F(PlannerFixture, ExactLeafUsesDescent) {
  Planner planner(Ctx());
  auto plan = planner.PlanSnapshots({20}, kCompStruct);  // L1's boundary.
  ASSERT_TRUE(plan.ok());
  auto steps = LinearSteps(plan.value());
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].edge, e_sr_r_);
  EXPECT_EQ(steps[1].edge, e_r_a_);
  EXPECT_EQ(steps[2].edge, e_a_l1_);
  // Descent cost: 50 + 100 + 200 + 3 overheads.
  EXPECT_NEAR(plan.value().estimated_cost, 350 + 3 * 64.0, 1.0);
}

TEST_F(PlannerFixture, MidEventlistSplitsAtVirtualNode) {
  Planner planner(Ctx());
  // t=22 sits in (20, 30]: 20% into eventlist L1->L2.
  auto plan = planner.PlanSnapshots({22}, kCompStruct);
  ASSERT_TRUE(plan.ok());
  auto steps = LinearSteps(plan.value());
  ASSERT_EQ(steps.size(), 4u);
  // Cheapest: descend to L1 (500 bytes) then 20% of the eventlist (200),
  // rather than to L2 (500) plus 80% backward (800).
  EXPECT_EQ(steps[2].edge, e_a_l1_);
  EXPECT_EQ(steps[3].kind, PlanStep::Kind::kApplyEvents);
  EXPECT_EQ(steps[3].edge, e_l12_);
  EXPECT_TRUE(steps[3].forward);
  EXPECT_EQ(steps[3].lo, 20);
  EXPECT_EQ(steps[3].hi, 22);
}

TEST_F(PlannerFixture, NearRightLeafGoesBackward) {
  Planner planner(Ctx());
  // t=29 is 90% into (20, 30]: cheaper to reach L2 and undo the last 10%.
  auto plan = planner.PlanSnapshots({29}, kCompStruct);
  ASSERT_TRUE(plan.ok());
  auto steps = LinearSteps(plan.value());
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[2].edge, e_b_l2_);
  EXPECT_EQ(steps[3].edge, e_l12_);
  EXPECT_FALSE(steps[3].forward);  // Backward from the right leaf.
}

TEST_F(PlannerFixture, MaterializedNodeShortCircuits) {
  skel_.mutable_node(a_)->materialized = true;
  skel_.mutable_node(a_)->materialized_components = kCompStruct;
  skel_.mutable_node(a_)->element_count = 10;  // Cheap copy.
  Planner planner(Ctx());
  auto plan = planner.PlanSnapshots({20}, kCompStruct);
  ASSERT_TRUE(plan.ok());
  auto steps = LinearSteps(plan.value());
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].kind, PlanStep::Kind::kLoadMaterialized);
  EXPECT_EQ(steps[0].node, a_);
  EXPECT_EQ(steps[1].edge, e_a_l1_);
}

TEST_F(PlannerFixture, MaterializedWithMissingComponentsIsIgnored) {
  skel_.mutable_node(a_)->materialized = true;
  skel_.mutable_node(a_)->materialized_components = kCompStruct;  // No attrs.
  Planner planner(Ctx());
  auto plan = planner.PlanSnapshots({20}, kCompStruct | kCompNodeAttr);
  ASSERT_TRUE(plan.ok());
  auto steps = LinearSteps(plan.value());
  // Must take the full descent: the materialized copy lacks attributes.
  ASSERT_GE(steps.size(), 3u);
  EXPECT_EQ(steps[0].kind, PlanStep::Kind::kApplyDelta);
}

TEST_F(PlannerFixture, DisallowMaterializedGate) {
  skel_.mutable_node(a_)->materialized = true;
  skel_.mutable_node(a_)->materialized_components = kCompAll;
  PlannerContext ctx = Ctx();
  ctx.allow_materialized = false;  // Aux retrieval mode.
  Planner planner(ctx);
  auto plan = planner.PlanSnapshots({20}, kCompStruct);
  ASSERT_TRUE(plan.ok());
  auto steps = LinearSteps(plan.value());
  EXPECT_EQ(steps[0].kind, PlanStep::Kind::kApplyDelta);
}

TEST_F(PlannerFixture, MultipointSharesThePrefix) {
  Planner planner(Ctx());
  auto plan = planner.PlanSnapshots({10, 20}, kCompStruct);  // L0 and L1.
  ASSERT_TRUE(plan.ok());
  // Shared prefix SR->R->A, then branch to both leaves:
  // total = 50 + 100 + 200 + 200 (+4 overheads), far below two full paths.
  EXPECT_NEAR(plan.value().estimated_cost, 550 + 4 * 64.0, 1.0);
  EXPECT_EQ(plan.value().StepCount(), 4u);
}

TEST_F(PlannerFixture, MultipointAcrossSubtreesBranchesAtRoot) {
  Planner planner(Ctx());
  auto plan = planner.PlanSnapshots({10, 40}, kCompStruct);  // L0 and L3.
  ASSERT_TRUE(plan.ok());
  // SR->R shared; R->A->L0 and R->B->L3.
  EXPECT_EQ(plan.value().StepCount(), 5u);
  EXPECT_NEAR(plan.value().estimated_cost, 50 + 2 * (100 + 200) + 5 * 64.0, 1.0);
}

TEST_F(PlannerFixture, ComponentSelectionChangesWeights) {
  // Make the nodeattr component of one edge huge; a struct-only query must
  // ignore it.
  skel_.mutable_edge(e_a_l1_)->sizes.bytes[1] = 1000000;
  Planner planner(Ctx());
  auto plan_struct = planner.PlanSnapshots({20}, kCompStruct);
  auto plan_full = planner.PlanSnapshots({20}, kCompStruct | kCompNodeAttr);
  ASSERT_TRUE(plan_struct.ok());
  ASSERT_TRUE(plan_full.ok());
  EXPECT_LT(plan_struct.value().estimated_cost, 1000.0);
  // The attr-laden query routes around the huge delta via the eventlists.
  auto steps = LinearSteps(plan_full.value());
  bool uses_heavy_edge = false;
  for (const auto& s : steps) {
    if (s.kind == PlanStep::Kind::kApplyDelta && s.edge == e_a_l1_) {
      uses_heavy_edge = true;
    }
  }
  EXPECT_FALSE(uses_heavy_edge);
}

TEST_F(PlannerFixture, TimesBeforeFirstBoundaryResolveToFirstLeaf) {
  Planner planner(Ctx());
  auto plan = planner.PlanSnapshots({5}, kCompStruct);
  ASSERT_TRUE(plan.ok());
  auto steps = LinearSteps(plan.value());
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(steps.back().edge, e_a_l0_);  // Ends at leaf 0, no partial events.
}

TEST_F(PlannerFixture, EmptySkeletonIsRejected) {
  Skeleton empty;
  PlannerContext ctx;
  ctx.skeleton = &empty;
  Planner planner(ctx);
  EXPECT_FALSE(planner.PlanSnapshots({1}, kCompStruct).ok());
}

TEST_F(PlannerFixture, PlanNodesReachesInteriorTargets) {
  Planner planner(Ctx());
  auto plan = planner.PlanNodes({a_, b_}, kCompStruct);
  ASSERT_TRUE(plan.ok());
  // SR->R shared, then R->A and R->B.
  EXPECT_EQ(plan.value().StepCount(), 3u);
}

TEST_F(PlannerFixture, RecentEventsChainBeyondLastLeaf) {
  PlannerContext ctx = Ctx();
  ctx.recent_count = 100;
  ctx.recent_end = 50;
  ctx.has_current = true;
  ctx.current_elements = 100;
  Planner planner(ctx);
  auto plan = planner.PlanSnapshots({45}, kCompStruct);
  ASSERT_TRUE(plan.ok());
  auto steps = LinearSteps(plan.value());
  ASSERT_FALSE(steps.empty());
  // The tail step replays recent events (either from L3 forward or from the
  // current graph backward).
  EXPECT_EQ(steps.back().kind, PlanStep::Kind::kApplyRecentEvents);
}

TEST_F(PlannerFixture, CachedSinglepointMatchesUncachedCost) {
  Planner planner(Ctx());
  SsspCache cache;
  for (Timestamp t : {5, 15, 20, 22, 29, 35, 40}) {
    auto cached = planner.PlanSinglepointCached(t, kCompStruct, &cache);
    auto full = planner.PlanSnapshots({t}, kCompStruct);
    ASSERT_TRUE(cached.ok()) << "t=" << t;
    ASSERT_TRUE(full.ok());
    EXPECT_NEAR(cached.value().estimated_cost, full.value().estimated_cost,
                full.value().estimated_cost * 0.25 + 64.0)
        << "t=" << t;
  }
  // The SSSP ran once: the cache stayed valid across the whole sweep.
  EXPECT_TRUE(cache.ValidFor(skel_, kCompStruct));
}

TEST_F(PlannerFixture, CacheInvalidatedBySkeletonChange) {
  Planner planner(Ctx());
  SsspCache cache;
  ASSERT_TRUE(planner.PlanSinglepointCached(20, kCompStruct, &cache).ok());
  EXPECT_TRUE(cache.ValidFor(skel_, kCompStruct));
  skel_.SetMaterialized(a_, true);  // Any mutation bumps the version.
  EXPECT_FALSE(cache.ValidFor(skel_, kCompStruct));
  skel_.mutable_node(a_)->materialized_components = kCompStruct;
  skel_.mutable_node(a_)->element_count = 1;
  auto plan = planner.PlanSinglepointCached(20, kCompStruct, &cache);
  ASSERT_TRUE(plan.ok());
  // The rebuilt cache routes through the cheap materialized node.
  EXPECT_EQ(plan.value().root->children[0].first.kind,
            PlanStep::Kind::kLoadMaterialized);
}

TEST_F(PlannerFixture, CacheIsComponentSpecific) {
  skel_.mutable_edge(e_a_l1_)->sizes.bytes[1] = 1000000;  // Huge attr column.
  Planner planner(Ctx());
  SsspCache cache;
  auto s1 = planner.PlanSinglepointCached(20, kCompStruct, &cache);
  ASSERT_TRUE(s1.ok());
  const double struct_cost = s1.value().estimated_cost;
  auto s2 = planner.PlanSinglepointCached(20, kCompStruct | kCompNodeAttr, &cache);
  ASSERT_TRUE(s2.ok());
  EXPECT_GT(s2.value().estimated_cost, struct_cost);  // Rebuilt for new mask.
}

}  // namespace
}  // namespace hgdb
