#ifndef HISTGRAPH_TESTS_TEST_UTIL_H_
#define HISTGRAPH_TESTS_TEST_UTIL_H_

// Shared randomness plumbing for the property/stress test suites. Every
// random choice a test makes flows through an explicit seed so any failure
// reproduces bit-for-bit:
//
//  - Wrap engines in SeededRng so the seed travels with the generator and
//    shows up in failure output (add `SCOPED_TRACE(rng.Desc())` or stream
//    `rng.seed()` into an assertion message).
//  - Derive per-iteration seeds with PropertySeeds(): by default it yields
//    {base, base+1, ...}; setting HISTGRAPH_TEST_SEED=<n> narrows any
//    property test to exactly the failing seed printed by a red run.

#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "common/types.h"
#include "temporal/event.h"

namespace hgdb {
namespace test {

/// A std::mt19937_64 that remembers the seed it was built from.
class SeededRng {
 public:
  explicit SeededRng(uint64_t seed) : seed_(seed), engine_(seed) {}

  uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  bool Chance(double p) { return NextDouble() < p; }

  /// Failure-trace description, e.g. "seed=1234 (HISTGRAPH_TEST_SEED=1234
  /// reruns exactly this case)".
  std::string Desc() const {
    return "seed=" + std::to_string(seed_) + " (HISTGRAPH_TEST_SEED=" +
           std::to_string(seed_) + " reruns exactly this case)";
  }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
};

/// Seeds for a property test: {base, base+1, ..., base+count-1}, unless the
/// HISTGRAPH_TEST_SEED environment variable pins a single seed (the way a
/// failure printed by SeededRng::Desc is reproduced).
inline std::vector<uint64_t> PropertySeeds(size_t count, uint64_t base) {
  if (const char* env = std::getenv("HISTGRAPH_TEST_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  std::vector<uint64_t> seeds;
  seeds.reserve(count);
  for (size_t i = 0; i < count; ++i) seeds.push_back(base + i);
  return seeds;
}

/// `k` random timestamps covering the event log's span (with a margin on both
/// sides); when k >= 4 the last one duplicates the first, so multipoint
/// requests always exercise the duplicate-time path.
inline std::vector<Timestamp> RandomTimes(SeededRng& rng,
                                          const std::vector<Event>& ev, int k) {
  const Timestamp lo = ev.front().time, hi = ev.back().time;
  std::vector<Timestamp> times;
  times.reserve(k);
  for (int i = 0; i < k; ++i) {
    times.push_back(rng.UniformRange(lo > 10 ? lo - 10 : 0, hi + 20));
  }
  if (k >= 4) times[k - 1] = times[0];
  return times;
}

}  // namespace test
}  // namespace hgdb

#endif  // HISTGRAPH_TESTS_TEST_UTIL_H_
