#include <gtest/gtest.h>

#include "graph/delta.h"
#include "graph/snapshot.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

TEST(SnapshotTest, NodeAndEdgeBasics) {
  Snapshot g;
  EXPECT_TRUE(g.AddNode(1));
  EXPECT_FALSE(g.AddNode(1));
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_TRUE(g.AddEdge(10, EdgeRecord{1, 2, false}));
  EXPECT_FALSE(g.AddEdge(10, EdgeRecord{1, 2, false}));
  ASSERT_NE(g.FindEdge(10), nullptr);
  EXPECT_EQ(g.FindEdge(10)->src, 1u);
  EXPECT_TRUE(g.RemoveEdge(10));
  EXPECT_FALSE(g.RemoveEdge(10));
  EXPECT_TRUE(g.RemoveNode(1));
  EXPECT_FALSE(g.HasNode(1));
}

TEST(SnapshotTest, AttributeLifecycle) {
  Snapshot g;
  g.AddNode(1);
  g.SetNodeAttr(1, "name", "alice");
  ASSERT_NE(g.GetNodeAttr(1, "name"), nullptr);
  EXPECT_EQ(*g.GetNodeAttr(1, "name"), "alice");
  g.SetNodeAttr(1, "name", "bob");
  EXPECT_EQ(*g.GetNodeAttr(1, "name"), "bob");
  g.RemoveNodeAttr(1, "name");
  EXPECT_EQ(g.GetNodeAttr(1, "name"), nullptr);
  EXPECT_EQ(g.GetNodeAttrs(1), nullptr);  // Empty maps are dropped.
}

TEST(SnapshotTest, ElementCounts) {
  Snapshot g;
  g.AddNode(1);
  g.AddNode(2);
  g.AddEdge(5, EdgeRecord{1, 2, false});
  g.SetNodeAttr(1, "a", "x");
  g.SetNodeAttr(1, "b", "y");
  g.SetEdgeAttr(5, "w", "3");
  EXPECT_EQ(g.NodeCount(), 2u);
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_EQ(g.NodeAttrCount(), 2u);
  EXPECT_EQ(g.EdgeAttrCount(), 1u);
  EXPECT_EQ(g.ElementCount(), 6u);
}

TEST(SnapshotTest, ApplyEventForwardBackwardInverse) {
  Snapshot g;
  std::vector<Event> events = {
      Event::AddNode(1, 1),
      Event::AddNode(1, 2),
      Event::SetNodeAttr(2, 1, "k", std::nullopt, "v1"),
      Event::AddEdge(3, 7, 1, 2, false),
      Event::SetEdgeAttr(4, 7, "w", std::nullopt, "9"),
      Event::SetNodeAttr(5, 1, "k", "v1", "v2"),
  };
  for (const auto& e : events) ASSERT_TRUE(g.Apply(e, true).ok()) << e.ToString();
  Snapshot after = g;
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    ASSERT_TRUE(g.Apply(*it, false).ok()) << it->ToString();
  }
  EXPECT_TRUE(g.Empty());
  // And forward again reproduces the same state.
  for (const auto& e : events) ASSERT_TRUE(g.Apply(e, true).ok());
  EXPECT_TRUE(g.Equals(after));
}

TEST(SnapshotTest, StrictApplyCatchesInconsistencies) {
  Snapshot g;
  ASSERT_TRUE(g.Apply(Event::AddNode(1, 1), true).ok());
  EXPECT_FALSE(g.Apply(Event::AddNode(2, 1), true).ok());  // Duplicate.
  EXPECT_FALSE(g.Apply(Event::DeleteNode(3, 99), true).ok());  // Absent.
  ASSERT_TRUE(
      g.Apply(Event::SetNodeAttr(4, 1, "k", std::nullopt, "v"), true).ok());
  // Old value mismatch.
  EXPECT_FALSE(
      g.Apply(Event::SetNodeAttr(5, 1, "k", "wrong", "w"), true).ok());
  // Deleting a node that still has attributes is a protocol violation.
  EXPECT_FALSE(g.Apply(Event::DeleteNode(6, 1), true).ok());
}

TEST(SnapshotTest, TransientEventsAreIgnored) {
  Snapshot g;
  ASSERT_TRUE(g.Apply(Event::TransientEdge(1, 1, 2, "m"), true).ok());
  EXPECT_TRUE(g.Empty());
}

TEST(SnapshotTest, ComponentFilteredApply) {
  Snapshot g;
  ASSERT_TRUE(g.Apply(Event::AddNode(1, 1), true, kCompStruct).ok());
  ASSERT_TRUE(
      g.Apply(Event::SetNodeAttr(2, 1, "k", std::nullopt, "v"), true, kCompStruct)
          .ok());
  EXPECT_EQ(g.NodeAttrCount(), 0u);  // Attr event gated out.
  EXPECT_EQ(g.NodeCount(), 1u);
}

TEST(SnapshotTest, CopyFiltered) {
  Snapshot g;
  g.AddNode(1);
  g.AddEdge(5, EdgeRecord{1, 1, false});
  g.SetNodeAttr(1, "a", "x");
  g.SetEdgeAttr(5, "w", "1");
  Snapshot s = g.CopyFiltered(kCompStruct);
  EXPECT_EQ(s.NodeCount(), 1u);
  EXPECT_EQ(s.EdgeCount(), 1u);
  EXPECT_EQ(s.NodeAttrCount(), 0u);
  EXPECT_EQ(s.EdgeAttrCount(), 0u);
  Snapshot n = g.CopyFiltered(kCompNodeAttr);
  EXPECT_EQ(n.NodeCount(), 0u);
  EXPECT_EQ(n.NodeAttrCount(), 1u);
}

TEST(SnapshotTest, AbsorbDisjoint) {
  Snapshot a, b;
  a.AddNode(1);
  a.SetNodeAttr(1, "k", "v");
  b.AddNode(2);
  b.AddEdge(9, EdgeRecord{2, 1, false});
  a.AbsorbDisjoint(std::move(b));
  EXPECT_TRUE(a.HasNode(1));
  EXPECT_TRUE(a.HasNode(2));
  EXPECT_TRUE(a.HasEdge(9));
  EXPECT_EQ(a.ElementCount(), 4u);
}

TEST(SnapshotTest, EqualsAndDiff) {
  Snapshot a, b;
  a.AddNode(1);
  b.AddNode(1);
  EXPECT_TRUE(a.Equals(b));
  b.SetNodeAttr(1, "k", "v");
  EXPECT_FALSE(a.Equals(b));
  EXPECT_NE(a.DiffString(b).find("only in rhs"), std::string::npos);
}

// --- Delta ------------------------------------------------------------------

TEST(DeltaTest, BetweenAndApply) {
  Snapshot source, target;
  source.AddNode(1);
  source.AddNode(2);
  source.AddEdge(10, EdgeRecord{1, 2, false});
  source.SetNodeAttr(1, "k", "old");

  target.AddNode(1);
  target.AddNode(3);
  target.AddEdge(11, EdgeRecord{1, 3, true});
  target.SetNodeAttr(1, "k", "new");
  target.SetEdgeAttr(11, "w", "5");

  Delta d = Delta::Between(target, source);
  Snapshot g = source;
  ASSERT_TRUE(d.ApplyTo(&g, true).ok());
  EXPECT_TRUE(g.Equals(target)) << g.DiffString(target);
  // Backward returns to the source exactly.
  ASSERT_TRUE(d.ApplyTo(&g, false).ok());
  EXPECT_TRUE(g.Equals(source)) << g.DiffString(source);
}

TEST(DeltaTest, InverseSwapsSides) {
  Snapshot a, b;
  a.AddNode(1);
  b.AddNode(2);
  Delta d = Delta::Between(b, a);
  Delta inv = d.Inverse();
  Snapshot g = b;
  ASSERT_TRUE(inv.ApplyTo(&g, true).ok());
  EXPECT_TRUE(g.Equals(a));
}

TEST(DeltaTest, EmptyDelta) {
  Snapshot a;
  a.AddNode(1);
  Delta d = Delta::Between(a, a);
  EXPECT_TRUE(d.IsEmpty());
  EXPECT_EQ(d.ElementCount(), 0u);
}

TEST(DeltaTest, ElementCountPerComponent) {
  Snapshot source, target;
  target.AddNode(1);
  target.SetNodeAttr(1, "a", "1");
  target.SetNodeAttr(1, "b", "2");
  target.AddEdge(5, EdgeRecord{1, 1, false});
  target.SetEdgeAttr(5, "w", "x");
  Delta d = Delta::Between(target, source);
  EXPECT_EQ(d.ElementCount(kCompStruct), 2u);
  EXPECT_EQ(d.ElementCount(kCompNodeAttr), 2u);
  EXPECT_EQ(d.ElementCount(kCompEdgeAttr), 1u);
  EXPECT_EQ(d.ElementCount(), 5u);
}

TEST(DeltaTest, SerializationRoundTripPerComponent) {
  Snapshot source, target;
  for (NodeId n = 1; n <= 50; ++n) {
    target.AddNode(n);
    if (n % 3 == 0) target.SetNodeAttr(n, "x", std::to_string(n));
  }
  for (EdgeId e = 1; e <= 30; ++e) {
    target.AddEdge(e, EdgeRecord{e % 50 + 1, (e * 7) % 50 + 1, e % 2 == 0});
    if (e % 5 == 0) target.SetEdgeAttr(e, "w", std::to_string(e));
  }
  source.AddNode(1);
  source.AddNode(999);
  source.SetNodeAttr(999, "gone", "soon");
  Delta d = Delta::Between(target, source);

  Delta decoded;
  for (ComponentMask c : {kCompStruct, kCompNodeAttr, kCompEdgeAttr}) {
    std::string blob;
    d.EncodeComponent(c, &blob);
    ASSERT_TRUE(decoded.DecodeComponent(c, blob).ok());
  }
  EXPECT_TRUE(decoded == d);
  Snapshot g = source;
  ASSERT_TRUE(decoded.ApplyTo(&g, true).ok());
  EXPECT_TRUE(g.Equals(target)) << g.DiffString(target);
}

TEST(DeltaTest, DecodeRejectsCorruption) {
  Snapshot a, b;
  b.AddNode(1);
  Delta d = Delta::Between(b, a);
  std::string blob;
  d.EncodeComponent(kCompStruct, &blob);
  Delta decoded;
  std::string trailing = blob + "x";
  EXPECT_FALSE(decoded.DecodeComponent(kCompStruct, trailing).ok());
  std::string truncated = blob.substr(0, blob.size() - 1);
  EXPECT_FALSE(decoded.DecodeComponent(kCompStruct, truncated).ok());
}

TEST(DeltaTest, StrictApplyRejectsMismatchedBase) {
  Snapshot a, b;
  b.AddNode(1);
  Delta d = Delta::Between(b, a);  // add node 1
  Snapshot wrong;
  wrong.AddNode(1);  // Node already there: delta does not apply cleanly.
  EXPECT_FALSE(d.ApplyTo(&wrong, true).ok());
}

// Property test: for random traces, Delta::Between(replay(t2), replay(t1))
// applied to replay(t1) equals replay(t2), in both directions, and
// component-filtered application matches filtered replay.
class DeltaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaPropertyTest, RoundTripOnRandomTraces) {
  RandomTraceOptions opts;
  opts.num_events = 4000;
  opts.seed = GetParam();
  GeneratedTrace trace = GenerateRandomTrace(opts);
  const Timestamp t_end = trace.events.back().time;
  const Timestamp t1 = t_end / 3, t2 = 2 * t_end / 3;

  Snapshot g1 = ReplayAt(trace.events, t1);
  Snapshot g2 = ReplayAt(trace.events, t2);
  Delta d = Delta::Between(g2, g1);

  Snapshot fwd = g1;
  ASSERT_TRUE(d.ApplyTo(&fwd, true).ok());
  EXPECT_TRUE(fwd.Equals(g2)) << fwd.DiffString(g2);

  Snapshot bwd = g2;
  ASSERT_TRUE(d.ApplyTo(&bwd, false).ok());
  EXPECT_TRUE(bwd.Equals(g1)) << bwd.DiffString(g1);

  // Component-filtered: struct-only delta application on struct-only base.
  Snapshot s1 = ReplayAt(trace.events, t1, kCompStruct);
  Snapshot s2 = ReplayAt(trace.events, t2, kCompStruct);
  ASSERT_TRUE(d.ApplyTo(&s1, true, kCompStruct).ok());
  EXPECT_TRUE(s1.Equals(s2)) << s1.DiffString(s2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 1234));

// Events applied forward then backward must return exactly to the start,
// from any intermediate point of a random trace.
class EventInversionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EventInversionTest, ForwardBackwardIsIdentity) {
  RandomTraceOptions opts;
  opts.num_events = 3000;
  opts.seed = GetParam();
  GeneratedTrace trace = GenerateRandomTrace(opts);

  Snapshot g;
  ASSERT_TRUE(g.ApplyAll(trace.events, true).ok());
  Snapshot end_state = g;
  ASSERT_TRUE(g.ApplyAll(trace.events, false).ok());
  EXPECT_TRUE(g.Empty()) << g.DiffString(Snapshot());
  ASSERT_TRUE(g.ApplyAll(trace.events, true).ok());
  EXPECT_TRUE(g.Equals(end_state));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventInversionTest, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace hgdb
