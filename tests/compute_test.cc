#include <gtest/gtest.h>

#include <cmath>

#include "compute/algorithms.h"
#include "compute/graph_accessor.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

Snapshot ChainGraph(size_t n) {
  Snapshot g;
  for (NodeId v = 1; v <= n; ++v) g.AddNode(v);
  for (NodeId v = 1; v < n; ++v) {
    g.AddEdge(v, EdgeRecord{v, v + 1, false});
  }
  return g;
}

TEST(PageRankTest, UniformOnRegularRing) {
  Snapshot g;
  const size_t n = 10;
  for (NodeId v = 0; v < n; ++v) g.AddNode(v);
  for (NodeId v = 0; v < n; ++v) {
    g.AddEdge(v + 1, EdgeRecord{v, (v + 1) % n, true});
  }
  SnapshotAccessor acc(&g);
  auto ranks = PageRank(acc, 30);
  ASSERT_EQ(ranks.size(), n);
  for (const auto& [v, r] : ranks) {
    EXPECT_NEAR(r, 1.0 / n, 1e-6) << "node " << v;
  }
}

TEST(PageRankTest, HubDominatesStar) {
  // Directed star pointing at node 0: node 0 must outrank everyone.
  Snapshot g;
  g.AddNode(0);
  for (NodeId v = 1; v <= 8; ++v) {
    g.AddNode(v);
    g.AddEdge(v, EdgeRecord{v, 0, true});
  }
  SnapshotAccessor acc(&g);
  auto ranks = PageRank(acc, 25);
  for (NodeId v = 1; v <= 8; ++v) EXPECT_GT(ranks[0], 2 * ranks[v]);
}

TEST(PageRankTest, SumIsBoundedAndStable) {
  RandomTraceOptions opts;
  opts.num_events = 2000;
  opts.seed = 17;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  Snapshot g = ReplayAt(trace.events, trace.events.back().time, kCompStruct);
  SnapshotAccessor acc(&g);
  auto ranks = PageRank(acc, 20);
  double sum = 0;
  for (const auto& [v, r] : ranks) {
    EXPECT_GE(r, 0.0);
    sum += r;
  }
  // With dangling nodes the sum leaks below 1 but stays in (0, 1].
  EXPECT_GT(sum, 0.0);
  EXPECT_LE(sum, 1.0 + 1e-9);
}

TEST(PageRankTest, MultiWorkerMatchesSingleWorker) {
  RandomTraceOptions opts;
  opts.num_events = 3000;
  opts.seed = 23;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  Snapshot g = ReplayAt(trace.events, trace.events.back().time, kCompStruct);
  SnapshotAccessor acc(&g);
  auto r1 = PageRank(acc, 15, 0.85, 1);
  auto r4 = PageRank(acc, 15, 0.85, 4);
  ASSERT_EQ(r1.size(), r4.size());
  for (const auto& [v, r] : r1) {
    EXPECT_NEAR(r, r4[v], 1e-9) << "node " << v;
  }
}

TEST(PageRankTest, ViewAndSnapshotAccessorsAgree) {
  RandomTraceOptions opts;
  opts.num_events = 2000;
  opts.seed = 29;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  Snapshot g = ReplayAt(trace.events, trace.events.back().time, kCompStruct);

  GraphPool pool;
  pool.InitCurrent(g);
  SnapshotAccessor snap_acc(&g);
  HistViewAccessor view_acc(pool.View(kCurrentGraph));
  auto r_snap = PageRank(snap_acc, 10);
  auto r_view = PageRank(view_acc, 10);
  ASSERT_EQ(r_snap.size(), r_view.size());
  for (const auto& [v, r] : r_snap) {
    EXPECT_NEAR(r, r_view[v], 1e-9) << "node " << v;
  }
}

TEST(ConnectedComponentsTest, TwoComponents) {
  Snapshot g;
  for (NodeId v = 1; v <= 6; ++v) g.AddNode(v);
  g.AddEdge(1, EdgeRecord{1, 2, false});
  g.AddEdge(2, EdgeRecord{2, 3, false});
  g.AddEdge(3, EdgeRecord{4, 5, false});
  SnapshotAccessor acc(&g);
  auto cc = ConnectedComponents(acc);
  EXPECT_EQ(cc[1], 1u);
  EXPECT_EQ(cc[2], 1u);
  EXPECT_EQ(cc[3], 1u);
  EXPECT_EQ(cc[4], 4u);
  EXPECT_EQ(cc[5], 4u);
  EXPECT_EQ(cc[6], 6u);  // Isolated.
}

TEST(ConnectedComponentsTest, LongChainConverges) {
  Snapshot g = ChainGraph(200);
  SnapshotAccessor acc(&g);
  auto cc = ConnectedComponents(acc, 2, 500);
  for (NodeId v = 1; v <= 200; ++v) EXPECT_EQ(cc[v], 1u) << v;
}

TEST(ShortestPathsTest, ChainDistances) {
  Snapshot g = ChainGraph(50);
  SnapshotAccessor acc(&g);
  auto dist = ShortestPaths(acc, 1);
  for (NodeId v = 1; v <= 50; ++v) {
    ASSERT_TRUE(dist.contains(v)) << v;
    EXPECT_EQ(dist[v], static_cast<int64_t>(v - 1));
  }
}

TEST(ShortestPathsTest, UnreachableNodesAbsent) {
  Snapshot g;
  g.AddNode(1);
  g.AddNode(2);
  g.AddNode(3);
  g.AddEdge(1, EdgeRecord{1, 2, false});
  SnapshotAccessor acc(&g);
  auto dist = ShortestPaths(acc, 1);
  EXPECT_TRUE(dist.contains(2));
  EXPECT_FALSE(dist.contains(3));
}

TEST(ShortestPathsTest, RespectsDirection) {
  Snapshot g;
  g.AddNode(1);
  g.AddNode(2);
  g.AddEdge(1, EdgeRecord{2, 1, true});  // 2 -> 1 only.
  SnapshotAccessor acc(&g);
  auto dist = ShortestPaths(acc, 1);
  EXPECT_FALSE(dist.contains(2));
  auto dist2 = ShortestPaths(acc, 2);
  EXPECT_TRUE(dist2.contains(1));
}

TEST(TriangleTest, CountsExactly) {
  Snapshot g;
  for (NodeId v = 1; v <= 5; ++v) g.AddNode(v);
  // Triangle 1-2-3 and triangle 2-3-4; edge to 5 adds none.
  g.AddEdge(1, EdgeRecord{1, 2, false});
  g.AddEdge(2, EdgeRecord{2, 3, false});
  g.AddEdge(3, EdgeRecord{1, 3, false});
  g.AddEdge(4, EdgeRecord{2, 4, false});
  g.AddEdge(5, EdgeRecord{3, 4, false});
  g.AddEdge(6, EdgeRecord{4, 5, false});
  SnapshotAccessor acc(&g);
  EXPECT_EQ(CountTriangles(acc), 2u);
}

TEST(DegreeStatsTest, Basics) {
  Snapshot g = ChainGraph(4);
  SnapshotAccessor acc(&g);
  DegreeStats stats = ComputeDegreeStats(acc);
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_NEAR(stats.mean_degree, 6.0 / 4.0, 1e-9);
}

TEST(LabelPropagationTest, SeparatesTwoCliques) {
  Snapshot g;
  EdgeId e = 1;
  for (NodeId v = 1; v <= 8; ++v) g.AddNode(v);
  // Clique {1..4} and clique {5..8}, joined by nothing.
  for (NodeId a = 1; a <= 4; ++a)
    for (NodeId b = a + 1; b <= 4; ++b) g.AddEdge(e++, EdgeRecord{a, b, false});
  for (NodeId a = 5; a <= 8; ++a)
    for (NodeId b = a + 1; b <= 8; ++b) g.AddEdge(e++, EdgeRecord{a, b, false});
  SnapshotAccessor acc(&g);
  auto labels = LabelPropagation(acc, 20);
  for (NodeId v = 2; v <= 4; ++v) EXPECT_EQ(labels[v], labels[1]);
  for (NodeId v = 6; v <= 8; ++v) EXPECT_EQ(labels[v], labels[5]);
  EXPECT_NE(labels[1], labels[5]);
}

TEST(ClusteringCoefficientTest, TriangleAndStar) {
  Snapshot tri;
  for (NodeId v = 1; v <= 3; ++v) tri.AddNode(v);
  tri.AddEdge(1, EdgeRecord{1, 2, false});
  tri.AddEdge(2, EdgeRecord{2, 3, false});
  tri.AddEdge(3, EdgeRecord{1, 3, false});
  SnapshotAccessor tri_acc(&tri);
  EXPECT_NEAR(ClusteringCoefficient(tri_acc), 1.0, 1e-9);

  Snapshot star;
  star.AddNode(0);
  for (NodeId v = 1; v <= 5; ++v) {
    star.AddNode(v);
    star.AddEdge(v, EdgeRecord{0, v, false});
  }
  SnapshotAccessor star_acc(&star);
  EXPECT_NEAR(ClusteringCoefficient(star_acc), 0.0, 1e-9);
}

TEST(EngineTest, HaltsOnEmptyGraph) {
  Snapshot g;
  SnapshotAccessor acc(&g);
  auto ranks = PageRank(acc, 10);
  EXPECT_TRUE(ranks.empty());
}

}  // namespace
}  // namespace hgdb
