#include <gtest/gtest.h>

#include "temporal/event.h"
#include "temporal/event_list.h"
#include "workload/generators.h"

namespace hgdb {
namespace {

TEST(EventTest, FactoriesPopulateFields) {
  Event e = Event::AddEdge(10, 5, 1, 2, true);
  EXPECT_EQ(e.type, EventType::kAddEdge);
  EXPECT_EQ(e.time, 10);
  EXPECT_EQ(e.edge, 5u);
  EXPECT_EQ(e.src, 1u);
  EXPECT_EQ(e.dst, 2u);
  EXPECT_TRUE(e.directed);

  Event a = Event::SetNodeAttr(7, 3, "job", std::nullopt, "analyst");
  EXPECT_EQ(a.type, EventType::kNodeAttr);
  EXPECT_FALSE(a.old_value.has_value());
  EXPECT_EQ(*a.new_value, "analyst");
}

TEST(EventTest, ComponentClassification) {
  EXPECT_EQ(Event::AddNode(1, 1).component(), kCompStruct);
  EXPECT_EQ(Event::DeleteEdge(1, 1, 1, 2, false).component(), kCompStruct);
  EXPECT_EQ(Event::SetNodeAttr(1, 1, "k", std::nullopt, "v").component(),
            kCompNodeAttr);
  EXPECT_EQ(Event::SetEdgeAttr(1, 1, "k", std::nullopt, "v").component(),
            kCompEdgeAttr);
  EXPECT_EQ(Event::TransientEdge(1, 1, 2, "m").component(), kCompTransient);
  EXPECT_TRUE(Event::TransientEdge(1, 1, 2, "m").is_transient());
  EXPECT_TRUE(Event::TransientNode(1, 1, "m").is_transient());
  EXPECT_FALSE(Event::AddNode(1, 1).is_transient());
}

TEST(EventTest, EncodeDecodeRoundTripAllTypes) {
  std::vector<Event> events = {
      Event::AddNode(5, 101),
      Event::DeleteNode(-3, 102),
      Event::AddEdge(7, 55, 1, 2, true),
      Event::DeleteEdge(8, 55, 1, 2, false),
      Event::SetNodeAttr(9, 3, "name", std::nullopt, "alice"),
      Event::SetNodeAttr(10, 3, "name", "alice", "bob"),
      Event::SetNodeAttr(11, 3, "name", "bob", std::nullopt),
      Event::SetEdgeAttr(12, 55, "w", "1", "2"),
      Event::TransientEdge(13, 4, 5, "hello"),
      Event::TransientNode(14, 6, "blip"),
  };
  std::string buf;
  for (const auto& e : events) e.EncodeTo(&buf);
  Slice in(buf);
  for (const auto& want : events) {
    Event got;
    ASSERT_TRUE(Event::DecodeFrom(&in, &got).ok());
    EXPECT_EQ(got, want) << want.ToString();
  }
  EXPECT_TRUE(in.empty());
}

TEST(EventTest, DecodeRejectsTruncation) {
  Event e = Event::SetNodeAttr(9, 3, "name", "x", "y");
  std::string buf;
  e.EncodeTo(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    Event got;
    EXPECT_FALSE(Event::DecodeFrom(&in, &got).ok()) << "cut=" << cut;
  }
}

TEST(EventTest, DecodeRejectsBadTypeByte) {
  std::string buf = "\x7f rest";
  Slice in(buf);
  Event got;
  EXPECT_TRUE(Event::DecodeFrom(&in, &got).IsCorruption());
}

TEST(EventTest, ToStringMatchesPaperStyle) {
  Event e = Event::AddEdge(100, 9, 23, 4590, false);
  EXPECT_EQ(e.ToString(), "{NE, E:9, N:23, N:4590, directed:no, t=100}");
}

TEST(EventListTest, ChronologyCheck) {
  EventList el;
  el.Append(Event::AddNode(1, 1));
  el.Append(Event::AddNode(1, 2));
  el.Append(Event::AddNode(5, 3));
  EXPECT_TRUE(el.IsChronological());
  el.Append(Event::AddNode(2, 4));
  EXPECT_FALSE(el.IsChronological());
}

TEST(EventListTest, StartEndTimes) {
  EventList el;
  EXPECT_EQ(el.StartTime(), kMinTimestamp);
  EXPECT_EQ(el.EndTime(), kMaxTimestamp);
  el.Append(Event::AddNode(3, 1));
  el.Append(Event::AddNode(9, 2));
  EXPECT_EQ(el.StartTime(), 3);
  EXPECT_EQ(el.EndTime(), 9);
}

TEST(EventListTest, ComponentCounts) {
  EventList el;
  el.Append(Event::AddNode(1, 1));
  el.Append(Event::SetNodeAttr(1, 1, "k", std::nullopt, "v"));
  el.Append(Event::SetEdgeAttr(2, 9, "k", std::nullopt, "v"));
  el.Append(Event::TransientEdge(3, 1, 2, "m"));
  el.Append(Event::AddNode(4, 2));
  EXPECT_EQ(el.CountComponent(kCompStruct), 2u);
  EXPECT_EQ(el.CountComponent(kCompNodeAttr), 1u);
  EXPECT_EQ(el.CountComponent(kCompEdgeAttr), 1u);
  EXPECT_EQ(el.CountComponent(kCompTransient), 1u);
}

// Columnar round trip: decode any subset of components and get the right
// events in the right order.
class EventListColumnarTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EventListColumnarTest, SubsetRoundTripPreservesOrder) {
  RandomTraceOptions opts;
  opts.num_events = 2000;
  opts.seed = 99;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  EventList el(trace.events);

  const unsigned components = GetParam();
  EventList decoded;
  for (unsigned c : {kCompStruct, kCompNodeAttr, kCompEdgeAttr, kCompTransient}) {
    if ((components & c) == 0) continue;
    std::string blob;
    el.EncodeComponent(static_cast<ComponentMask>(c), &blob);
    ASSERT_TRUE(decoded.DecodeAndMergeComponent(blob).ok());
  }
  decoded.FinalizeMerge();

  std::vector<Event> expected;
  for (const auto& e : el.events()) {
    if (e.component() & components) expected.push_back(e);
  }
  ASSERT_EQ(decoded.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(decoded[i], expected[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ComponentSubsets, EventListColumnarTest,
    ::testing::Values(kCompStruct, kCompNodeAttr, kCompEdgeAttr, kCompTransient,
                      kCompStruct | kCompNodeAttr, kCompStruct | kCompEdgeAttr,
                      kCompAll, kCompAllWithTransient));

TEST(EventListTest, CorruptComponentBlobRejected) {
  EventList el;
  el.Append(Event::AddNode(1, 1));
  std::string blob;
  el.EncodeComponent(kCompStruct, &blob);
  blob += "trailing garbage";
  EventList decoded;
  EXPECT_FALSE(decoded.DecodeAndMergeComponent(blob).ok());
}

}  // namespace
}  // namespace hgdb
