#include <gtest/gtest.h>

#include "graphpool/graph_pool.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

Snapshot SmallGraph() {
  Snapshot g;
  g.AddNode(1);
  g.AddNode(2);
  g.AddNode(3);
  g.AddEdge(10, EdgeRecord{1, 2, false});
  g.AddEdge(11, EdgeRecord{2, 3, true});
  g.SetNodeAttr(1, "name", "alice");
  g.SetEdgeAttr(10, "w", "5");
  return g;
}

TEST(GraphPoolTest, CurrentGraphMembership) {
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  EXPECT_TRUE(pool.ContainsNode(kCurrentGraph, 1));
  EXPECT_TRUE(pool.ContainsEdge(kCurrentGraph, 10));
  EXPECT_FALSE(pool.ContainsNode(kCurrentGraph, 99));
  ASSERT_NE(pool.GetNodeAttr(kCurrentGraph, 1, "name"), nullptr);
  EXPECT_EQ(*pool.GetNodeAttr(kCurrentGraph, 1, "name"), "alice");
  EXPECT_EQ(pool.GetNodeAttr(kCurrentGraph, 2, "name"), nullptr);
}

TEST(GraphPoolTest, OverlayHistoricalRoundTrip) {
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  Snapshot old;
  old.AddNode(1);
  old.AddNode(4);
  old.AddEdge(12, EdgeRecord{1, 4, false});
  old.SetNodeAttr(1, "name", "al");  // Different historical value.
  auto id = pool.OverlayHistorical(old);
  ASSERT_TRUE(id.ok());

  EXPECT_TRUE(pool.ContainsNode(*id, 1));
  EXPECT_TRUE(pool.ContainsNode(*id, 4));
  EXPECT_FALSE(pool.ContainsNode(*id, 2));
  EXPECT_TRUE(pool.ContainsEdge(*id, 12));
  EXPECT_FALSE(pool.ContainsEdge(*id, 10));
  // Attribute variants: each graph sees its own value.
  EXPECT_EQ(*pool.GetNodeAttr(*id, 1, "name"), "al");
  EXPECT_EQ(*pool.GetNodeAttr(kCurrentGraph, 1, "name"), "alice");
  // Extraction gives back exactly the overlaid snapshot.
  EXPECT_TRUE(pool.ExtractSnapshot(*id).Equals(old));
}

TEST(GraphPoolTest, UnionIsSharedNotDuplicated) {
  GraphPool pool;
  Snapshot g = SmallGraph();
  pool.InitCurrent(g);
  const size_t nodes_before = pool.UnionNodeCount();
  // Overlaying an identical snapshot must not grow the union.
  auto id = pool.OverlayHistorical(g);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(pool.UnionNodeCount(), nodes_before);
  EXPECT_EQ(pool.UnionEdgeCount(), 2u);
}

TEST(GraphPoolTest, DependentOverlayOnlyTouchesDiff) {
  GraphPool pool;
  Snapshot g = SmallGraph();
  pool.InitCurrent(g);

  // Historical graph = current minus node 3 / edge 11, plus node 5.
  Snapshot hist = g;
  hist.RemoveEdge(11);
  hist.RemoveNode(3);
  hist.AddNode(5);
  Delta diff = Delta::Between(hist, g);
  auto id = pool.OverlayDependent(kCurrentGraph, diff);
  ASSERT_TRUE(id.ok());

  EXPECT_TRUE(pool.ContainsNode(*id, 1));   // Inherited from current.
  EXPECT_TRUE(pool.ContainsNode(*id, 5));   // Override add.
  EXPECT_FALSE(pool.ContainsNode(*id, 3));  // Override delete.
  EXPECT_FALSE(pool.ContainsEdge(*id, 11));
  EXPECT_TRUE(pool.ContainsEdge(*id, 10));
  EXPECT_EQ(*pool.GetNodeAttr(*id, 1, "name"), "alice");  // Inherited attr.
  EXPECT_TRUE(pool.ExtractSnapshot(*id).Equals(hist));
}

TEST(GraphPoolTest, DependentAttrOverride) {
  GraphPool pool;
  Snapshot g = SmallGraph();
  pool.InitCurrent(g);
  Snapshot hist = g;
  hist.SetNodeAttr(1, "name", "old-alice");
  Delta diff = Delta::Between(hist, g);
  auto id = pool.OverlayDependent(kCurrentGraph, diff);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*pool.GetNodeAttr(*id, 1, "name"), "old-alice");
  EXPECT_EQ(*pool.GetNodeAttr(kCurrentGraph, 1, "name"), "alice");
}

TEST(GraphPoolTest, ReleaseOfDependencyBaseIsRefused) {
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  auto base = pool.OverlayMaterialized(SmallGraph());
  ASSERT_TRUE(base.ok());
  Delta empty_diff;
  auto dep = pool.OverlayDependent(*base, empty_diff);
  ASSERT_TRUE(dep.ok());
  EXPECT_FALSE(pool.Release(*base).ok());  // Dependent still active.
  ASSERT_TRUE(pool.Release(*dep).ok());
  EXPECT_TRUE(pool.Release(*base).ok());
}

TEST(GraphPoolTest, CurrentGraphIsPinned) {
  GraphPool pool;
  EXPECT_FALSE(pool.Release(kCurrentGraph).ok());
}

TEST(GraphPoolTest, ApplyEventsToCurrentAndRecentlyDeletedBit) {
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  ASSERT_TRUE(pool.ApplyEventToCurrent(Event::AddNode(5, 7)).ok());
  EXPECT_TRUE(pool.ContainsNode(kCurrentGraph, 7));
  // Protocol: attribute removals precede the structural delete.
  ASSERT_TRUE(
      pool.ApplyEventToCurrent(Event::SetEdgeAttr(6, 10, "w", "5", std::nullopt))
          .ok());
  ASSERT_TRUE(
      pool.ApplyEventToCurrent(Event::DeleteEdge(6, 10, 1, 2, false)).ok());
  EXPECT_FALSE(pool.ContainsEdge(kCurrentGraph, 10));
  // The deleted edge stays in the union (bit 1) until the index absorbs it.
  EXPECT_EQ(pool.UnionEdgeCount(), 2u);
  pool.ClearRecentlyDeleted();
  EXPECT_EQ(pool.RunCleaner(), 2u);  // Edge and its attr value evicted now.
  EXPECT_EQ(pool.UnionEdgeCount(), 1u);
}

TEST(GraphPoolTest, AttrValueChangeKeepsVariantsSeparate) {
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  ASSERT_TRUE(
      pool.ApplyEventToCurrent(Event::SetNodeAttr(9, 1, "name", "alice", "alicia"))
          .ok());
  EXPECT_EQ(*pool.GetNodeAttr(kCurrentGraph, 1, "name"), "alicia");
  // Old value survives with the recently-deleted bit (bit 1) only.
  pool.ClearRecentlyDeleted();
  pool.RunCleaner();
  EXPECT_EQ(*pool.GetNodeAttr(kCurrentGraph, 1, "name"), "alicia");
}

TEST(GraphPoolTest, CleanerEvictsReleasedGraphElements) {
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  Snapshot extra;
  extra.AddNode(100);
  extra.AddNode(101);
  extra.AddEdge(50, EdgeRecord{100, 101, false});
  auto id = pool.OverlayHistorical(extra);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(pool.UnionNodeCount(), 5u);
  ASSERT_TRUE(pool.Release(*id).ok());
  // Lazy: nothing evicted until the cleaner runs.
  EXPECT_EQ(pool.UnionNodeCount(), 5u);
  const size_t evicted = pool.RunCleaner();
  EXPECT_EQ(evicted, 3u);
  EXPECT_EQ(pool.UnionNodeCount(), 3u);
  EXPECT_EQ(pool.UnionEdgeCount(), 2u);
}

TEST(GraphPoolTest, BitsAreRecycledAfterCleanup) {
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  std::vector<int> first_bits;
  Snapshot s;
  s.AddNode(42);
  auto a = pool.OverlayHistorical(s);
  ASSERT_TRUE(a.ok());
  const auto slot_a = pool.slots()[*a];
  ASSERT_TRUE(pool.Release(*a).ok());
  pool.RunCleaner();
  auto b = pool.OverlayHistorical(s);
  ASSERT_TRUE(b.ok());
  const auto slot_b = pool.slots()[*b];
  // The freed bit pair is reused by the next overlay.
  EXPECT_EQ(slot_a.bit0 + slot_a.bit1, slot_b.bit0 + slot_b.bit1);
}

TEST(GraphPoolTest, ViewTraversal) {
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  HistGraphView view = pool.View(kCurrentGraph);
  auto nodes = view.GetNodes();
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<NodeId>{1, 2, 3}));
  auto n1 = view.GetNeighbors(2);
  std::sort(n1.begin(), n1.end());
  EXPECT_EQ(n1, (std::vector<NodeId>{1, 3}));
  // Out-neighbors respect direction: edge 11 is 2 -> 3 directed, so node 3
  // has no out-neighbors, while node 2 reaches both 1 (undirected) and 3.
  EXPECT_EQ(view.GetOutNeighbors(3).size(), 0u);
  auto out2 = view.GetOutNeighbors(2);
  std::sort(out2.begin(), out2.end());
  EXPECT_EQ(out2, (std::vector<NodeId>{1, 3}));
}

TEST(GraphPoolTest, ViewCountsAndIncidence) {
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  HistGraphView view = pool.View(kCurrentGraph);
  EXPECT_EQ(view.CountNodes(), 3u);
  EXPECT_EQ(view.CountEdges(), 2u);
  EXPECT_EQ(view.GetIncidentEdges(2).size(), 2u);
  EXPECT_EQ(view.GetIncidentEdges(99).size(), 0u);
}

// Property test: overlay many snapshots of a random evolving graph; each
// view must extract exactly its snapshot, independent of the others.
class GraphPoolOverlayTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphPoolOverlayTest, ManyOverlaidSnapshotsStayIndependent) {
  RandomTraceOptions opts;
  opts.num_events = 3000;
  opts.seed = GetParam();
  GeneratedTrace trace = GenerateRandomTrace(opts);
  const Timestamp t_max = trace.events.back().time;

  GraphPool pool;
  pool.InitCurrent(ReplayAt(trace.events, t_max));

  std::vector<std::pair<PoolGraphId, Snapshot>> overlaid;
  for (int i = 1; i <= 10; ++i) {
    const Timestamp t = t_max * i / 10;
    Snapshot snap = ReplayAt(trace.events, t);
    auto id = pool.OverlayHistorical(snap);
    ASSERT_TRUE(id.ok());
    overlaid.emplace_back(*id, std::move(snap));
  }
  for (const auto& [id, want] : overlaid) {
    Snapshot got = pool.ExtractSnapshot(id);
    EXPECT_TRUE(got.Equals(want)) << got.DiffString(want);
  }
  // Release every other graph, clean, and re-verify the survivors.
  for (size_t i = 0; i < overlaid.size(); i += 2) {
    ASSERT_TRUE(pool.Release(overlaid[i].first).ok());
  }
  pool.RunCleaner();
  for (size_t i = 1; i < overlaid.size(); i += 2) {
    Snapshot got = pool.ExtractSnapshot(overlaid[i].first);
    EXPECT_TRUE(got.Equals(overlaid[i].second))
        << got.DiffString(overlaid[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPoolOverlayTest, ::testing::Values(3, 9, 27));

TEST(GraphPoolTest, MemoryGrowsSublinearlyWithOverlappingSnapshots) {
  // The Figure 8(a) effect in miniature: a growing-only trace where every
  // snapshot is a subset of the current graph. Pool memory must stay within
  // a small factor of the single-copy footprint instead of 10x.
  DblpLikeOptions opts;
  opts.target_edges = 5000;
  opts.years = 20;
  opts.attrs_per_node = 2;
  GeneratedTrace trace = GenerateDblpLikeTrace(opts);
  const Timestamp t_max = trace.events.back().time;

  Snapshot full = ReplayAt(trace.events, t_max);
  GraphPool pool;
  pool.InitCurrent(full);
  const size_t base = pool.MemoryBytes();  // One resident copy.
  for (int i = 1; i <= 10; ++i) {
    Snapshot snap = ReplayAt(trace.events, t_max * i / 10);
    ASSERT_TRUE(pool.OverlayHistorical(snap).ok());
  }
  // Ten overlaid snapshots of a growing-only graph are all subsets of the
  // current graph: only bitmap bits grow, so total memory must stay within a
  // small factor of one copy instead of ~6x (the sum of the copies).
  EXPECT_LT(pool.MemoryBytes(), base + base / 2);
}

TEST(GraphPoolTest, DependentOnMaterializedGraph) {
  // The paper's Figure 5(c) row: "historical snapshot 35 is dependent on
  // materialized graph 4" — dependency on a *materialized* base, not the
  // current graph.
  GraphPool pool;
  pool.InitCurrent(SmallGraph());
  Snapshot mat;
  mat.AddNode(10);
  mat.AddNode(11);
  mat.AddEdge(20, EdgeRecord{10, 11, false});
  mat.SetNodeAttr(10, "k", "v");
  auto base = pool.OverlayMaterialized(mat);
  ASSERT_TRUE(base.ok());

  Snapshot hist = mat;
  hist.RemoveEdge(20);
  hist.AddNode(12);
  Delta diff = Delta::Between(hist, mat);
  auto dep = pool.OverlayDependent(*base, diff);
  ASSERT_TRUE(dep.ok());
  EXPECT_TRUE(pool.ContainsNode(*dep, 10));   // Inherited.
  EXPECT_TRUE(pool.ContainsNode(*dep, 12));   // Override add.
  EXPECT_FALSE(pool.ContainsEdge(*dep, 20));  // Override delete.
  EXPECT_EQ(*pool.GetNodeAttr(*dep, 10, "k"), "v");
  EXPECT_TRUE(pool.ExtractSnapshot(*dep).Equals(hist));
  // The bit table records the dependency.
  EXPECT_EQ(pool.slots()[*dep].dep, *base);
}

TEST(GraphPoolTest, ChainedDependencies) {
  GraphPool pool;
  Snapshot g = SmallGraph();
  pool.InitCurrent(g);
  // h1 depends on current; h2 depends on h1.
  Snapshot h1 = g;
  h1.AddNode(100);
  auto id1 = pool.OverlayDependent(kCurrentGraph, Delta::Between(h1, g));
  ASSERT_TRUE(id1.ok());
  Snapshot h2 = h1;
  h2.RemoveNode(100);
  h2.AddNode(200);
  auto id2 = pool.OverlayDependent(*id1, Delta::Between(h2, h1));
  ASSERT_TRUE(id2.ok());
  EXPECT_TRUE(pool.ExtractSnapshot(*id1).Equals(h1));
  EXPECT_TRUE(pool.ExtractSnapshot(*id2).Equals(h2));
  // Release order is enforced along the chain.
  EXPECT_FALSE(pool.Release(*id1).ok());
  ASSERT_TRUE(pool.Release(*id2).ok());
  ASSERT_TRUE(pool.Release(*id1).ok());
}

TEST(GraphPoolTest, ManyAttrVariantsAcrossGraphs) {
  // One attribute whose value differs across five historical graphs: each
  // graph must see exactly its own variant.
  GraphPool pool;
  Snapshot base;
  base.AddNode(1);
  pool.InitCurrent(base);
  std::vector<std::pair<PoolGraphId, std::string>> overlays;
  for (int i = 0; i < 5; ++i) {
    Snapshot h;
    h.AddNode(1);
    h.SetNodeAttr(1, "v", "value" + std::to_string(i));
    auto id = pool.OverlayHistorical(h);
    ASSERT_TRUE(id.ok());
    overlays.emplace_back(*id, "value" + std::to_string(i));
  }
  for (const auto& [id, want] : overlays) {
    const std::string* got = pool.GetNodeAttr(id, 1, "v");
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, want);
  }
  EXPECT_EQ(pool.GetNodeAttr(kCurrentGraph, 1, "v"), nullptr);
}

TEST(GraphPoolTest, CleanerKeepsSharedElements) {
  // Element shared by a released and a live graph must survive cleanup.
  GraphPool pool;
  Snapshot a;
  a.AddNode(1);
  a.AddNode(2);
  Snapshot b;
  b.AddNode(2);
  b.AddNode(3);
  auto ia = pool.OverlayHistorical(a);
  auto ib = pool.OverlayHistorical(b);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  ASSERT_TRUE(pool.Release(*ia).ok());
  pool.RunCleaner();
  EXPECT_FALSE(pool.ContainsNode(*ib, 1));
  EXPECT_TRUE(pool.ContainsNode(*ib, 2));  // Shared: still alive.
  EXPECT_TRUE(pool.ContainsNode(*ib, 3));
  EXPECT_EQ(pool.UnionNodeCount(), 2u);
}

}  // namespace
}  // namespace hgdb
