#include <gtest/gtest.h>

#include <cmath>

#include "analysis/models.h"
#include "deltagraph/delta_graph.h"
#include "workload/generators.h"

namespace hgdb {
namespace {

TEST(ModelsTest, CurrentGraphSizeLinearInEvents) {
  GraphDynamics dyn{.delta_star = 0.6, .rho_star = 0.2, .initial_size = 100,
                    .num_events = 1000};
  EXPECT_DOUBLE_EQ(CurrentGraphSize(dyn), 100 + 1000 * 0.4);
}

TEST(ModelsTest, BalancedLevelCostIsLevelIndependent) {
  GraphDynamics dyn{.delta_star = 0.5, .rho_star = 0.5, .initial_size = 0,
                    .num_events = 100000};
  const size_t L = 1000;
  const int k = 2;
  // Per-delta size grows by k each level, but the number of edges shrinks by
  // k: level totals are equal. Verify via the per-delta formula.
  const double level2 = BalancedDeltaElements(dyn, L, k, 2);
  const double level3 = BalancedDeltaElements(dyn, L, k, 3);
  EXPECT_DOUBLE_EQ(level3, level2 * k);
  const double edges_level2 = dyn.num_events / static_cast<double>(L);
  const double edges_level3 = edges_level2 / k;
  EXPECT_NEAR(level2 * edges_level2, level3 * edges_level3, 1e-6);
  EXPECT_NEAR(level2 * edges_level2, BalancedLevelElements(dyn, k), 1e-6);
}

TEST(ModelsTest, IntersectionRootSpecialCases) {
  // Growing-only: root = G0.
  GraphDynamics growing{.delta_star = 1.0, .rho_star = 0.0, .initial_size = 500,
                        .num_events = 10000};
  EXPECT_DOUBLE_EQ(IntersectionRootSize(growing), 500.0);

  // Constant size (delta = rho): |G0| e^{-|E|delta/|G0|}.
  GraphDynamics constant{.delta_star = 0.5, .rho_star = 0.5, .initial_size = 1000,
                         .num_events = 2000};
  EXPECT_NEAR(IntersectionRootSize(constant), 1000 * std::exp(-2000 * 0.5 / 1000),
              1e-9);

  // delta = 2 rho: |G0|^2 / (|G0| + rho |E|).
  GraphDynamics doubling{.delta_star = 0.5, .rho_star = 0.25, .initial_size = 1000,
                         .num_events = 4000};
  EXPECT_NEAR(IntersectionRootSize(doubling), 1000.0 * 1000.0 / (1000 + 0.25 * 4000),
              1e-6);
}

TEST(ModelsTest, SegmentTreeCostsMoreThanIntervalTree) {
  GraphDynamics dyn{.delta_star = 0.5, .rho_star = 0.3, .initial_size = 0,
                    .num_events = 50000};
  EXPECT_GT(SegmentTreeElements(dyn), IntervalTreeElements(dyn));
}

TEST(EventDensityTest, LinearAndSuperLinearGrowth) {
  // Uniform buckets: g(t) ~ t -> exponent ~1, not super-linear.
  std::vector<size_t> uniform(20, 100);
  EventDensity lin = FitEventDensity(uniform);
  EXPECT_NEAR(lin.growth_exponent, 1.0, 0.15);
  EXPECT_FALSE(lin.IsSuperLinear());
  EXPECT_NEAR(RecommendedMixedRatio(lin), 0.5, 0.05);

  // Quadratically growing buckets: g(t) ~ t^2.
  std::vector<size_t> quad;
  for (size_t i = 1; i <= 20; ++i) quad.push_back(i * i);
  EventDensity sup = FitEventDensity(quad);
  EXPECT_GT(sup.growth_exponent, 1.5);
  EXPECT_TRUE(sup.IsSuperLinear());
  EXPECT_GT(RecommendedMixedRatio(sup), 0.55);
}

TEST(EventDensityTest, DblpLikeTraceIsSuperLinear) {
  // The Dataset-1 stand-in must show the super-linear g(t) the paper expects
  // of real networks (Section 5.1).
  DblpLikeOptions opts;
  opts.target_edges = 8000;
  opts.years = 40;
  opts.attrs_per_node = 0;
  GeneratedTrace trace = GenerateDblpLikeTrace(opts);
  const Timestamp t0 = trace.events.front().time;
  const Timestamp t1 = trace.events.back().time;
  std::vector<size_t> buckets(24, 0);
  for (const auto& e : trace.events) {
    const size_t b = std::min<size_t>(
        buckets.size() - 1,
        static_cast<size_t>((e.time - t0) * buckets.size() / (t1 - t0 + 1)));
    ++buckets[b];
  }
  EventDensity density = FitEventDensity(buckets);
  EXPECT_TRUE(density.IsSuperLinear()) << density.growth_exponent;
  EXPECT_GT(RecommendedMixedRatio(density), 0.5);
}

TEST(EventDensityTest, DegenerateInputs) {
  EXPECT_EQ(FitEventDensity({}).growth_exponent, 1.0);
  EXPECT_EQ(FitEventDensity({0, 0, 0}).growth_exponent, 1.0);
}

// --- Model vs measurement -------------------------------------------------------

// Build a constant-rate churn trace and check the analytical predictions
// against the real index within tolerance. This validates Section 5.3
// empirically, which the paper itself does not show — our EXPERIMENTS.md
// records it as an extension.
class ModelValidationTest : public ::testing::Test {
 protected:
  void Build(const std::string& function, size_t L, int k) {
    // Constant-size graph under churn, seeded by an explicit G0 (the way
    // Datasets 2 and 3 start from a snapshot): the constant-rate model of
    // Section 5.1 then applies to the whole indexed trace.
    GeneratedTrace seed_trace;
    seed_trace.world = std::make_unique<TraceWorld>(99);
    TraceWorld& w = *seed_trace.world;
    std::vector<Event> bootstrap;
    Timestamp t = 1;
    for (int i = 0; i < 400; ++i) w.AddNode(t, 0, &bootstrap);
    for (int i = 0; i < 2000; ++i) {
      t += 1;
      w.AddRandomEdge(t, false, &bootstrap);
    }
    const Snapshot g0 = w.graph();
    const size_t initial_elements = g0.ElementCount();

    std::vector<Event> churn_events;
    ChurnOptions churn;
    churn.num_events = 20000;
    churn.add_fraction = 0.5;
    churn.seed = 7;
    AppendChurnPhase(&w, t + 1, churn, &churn_events);

    size_t inserts = 0, deletes = 0;
    for (const auto& e : churn_events) {
      if (e.type == EventType::kAddEdge) ++inserts;
      if (e.type == EventType::kDeleteEdge) ++deletes;
    }
    churn_events_ = churn_events.size();
    dyn_ = EstimateDynamics(inserts, deletes, churn_events_,
                            static_cast<double>(initial_elements));

    store_ = NewMemKVStore();
    DeltaGraphOptions opts;
    opts.leaf_size = L;
    opts.arity = k;
    opts.functions = {function};
    auto dg = DeltaGraph::Create(store_.get(), opts);
    ASSERT_TRUE(dg.ok());
    dg_ = std::move(dg).value();
    ASSERT_TRUE(dg_->SetInitialSnapshot(g0, t).ok());
    ASSERT_TRUE(dg_->AppendAll(churn_events).ok());
    ASSERT_TRUE(dg_->Finalize().ok());
  }

  GraphDynamics dyn_;
  size_t churn_events_ = 0;
  std::unique_ptr<KVStore> store_;
  std::unique_ptr<DeltaGraph> dg_;
};

TEST_F(ModelValidationTest, BalancedDeltaSizesTrackModel) {
  Build("balanced", 1000, 2);
  // Measure average level-2 delta element counts (parents of leaves).
  const auto& skel = dg_->skeleton();
  double measured = 0;
  size_t count = 0;
  for (size_t i = 0; i < skel.edge_count(); ++i) {
    const auto& e = skel.edge(static_cast<int32_t>(i));
    if (e.deleted || e.is_eventlist) continue;
    const auto& from = skel.node(e.from);
    const auto& to = skel.node(e.to);
    if (from.level == 2 && to.is_leaf && !from.is_super_root) {
      measured += static_cast<double>(e.sizes.TotalElements(kCompAll));
      ++count;
    }
  }
  ASSERT_GT(count, 4u);
  measured /= static_cast<double>(count);
  GraphDynamics dyn = dyn_;
  dyn.num_events = static_cast<double>(churn_events_);
  const double predicted = BalancedDeltaElements(dyn, 1000, 2, 2);
  // Constant-rate trace: the measurement should track the model closely.
  EXPECT_GT(measured, predicted * 0.5);
  EXPECT_LT(measured, predicted * 2.0);
}

TEST_F(ModelValidationTest, IntersectionRootTracksSurvivalModel) {
  Build("intersection", 1000, 2);
  // Measured root size: element count of the super-root edge's delta.
  const auto& skel = dg_->skeleton();
  uint64_t root_elements = 0;
  for (int32_t eid : skel.incident_edges(skel.super_root())) {
    const auto& e = skel.edge(eid);
    if (!e.deleted) root_elements += e.sizes.TotalElements(kCompAll);
  }
  // The churn deletes *edges* only, so the survival model applies to the
  // edge population; G0's nodes are never deleted and survive wholesale.
  GraphDynamics edge_dyn = dyn_;
  edge_dyn.num_events = static_cast<double>(churn_events_);
  edge_dyn.initial_size = 2000;  // |G0| edges.
  const double surviving_edges = IntersectionRootSize(edge_dyn);
  const double predicted = 400 /* G0 nodes */ + surviving_edges;
  EXPECT_LT(static_cast<double>(root_elements), dyn_.initial_size);
  EXPECT_GT(static_cast<double>(root_elements), predicted * 0.7);
  EXPECT_LT(static_cast<double>(root_elements), predicted * 1.4);
}

}  // namespace
}  // namespace hgdb
