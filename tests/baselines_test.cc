#include <gtest/gtest.h>

#include "baselines/copy_log_index.h"
#include "baselines/interval_tree_index.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

enum class BaselineKind { kCopyLog, kLog, kLogText, kIntervalTree, kSegmentTree };

std::string KindName(const ::testing::TestParamInfo<BaselineKind>& info) {
  switch (info.param) {
    case BaselineKind::kCopyLog:
      return "CopyLog";
    case BaselineKind::kLog:
      return "Log";
    case BaselineKind::kLogText:
      return "LogText";
    case BaselineKind::kIntervalTree:
      return "IntervalTree";
    case BaselineKind::kSegmentTree:
      return "SegmentTree";
  }
  return "?";
}

class BaselineGroundTruthTest : public ::testing::TestWithParam<BaselineKind> {
 protected:
  void Build(const std::vector<Event>& events) {
    store_ = NewMemKVStore();
    switch (GetParam()) {
      case BaselineKind::kCopyLog:
        index_ = std::make_unique<CopyLogIndex>(store_.get(), 500);
        break;
      case BaselineKind::kLog:
        index_ = std::make_unique<LogIndex>(store_.get(), 512);
        break;
      case BaselineKind::kLogText:
        index_ = std::make_unique<LogIndex>(store_.get(), 512, /*text_format=*/true);
        break;
      case BaselineKind::kIntervalTree:
        index_ = std::make_unique<IntervalTreeIndex>();
        break;
      case BaselineKind::kSegmentTree:
        index_ = std::make_unique<SegmentTreeIndex>();
        break;
    }
    ASSERT_TRUE(index_->Build(events).ok());
  }

  std::unique_ptr<KVStore> store_;
  std::unique_ptr<SnapshotIndex> index_;
};

TEST_P(BaselineGroundTruthTest, MatchesReplayEverywhere) {
  RandomTraceOptions opts;
  opts.num_events = 5000;
  opts.seed = 2024;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  Build(trace.events);

  const Timestamp t_min = trace.events.front().time;
  const Timestamp t_max = trace.events.back().time;
  std::vector<Timestamp> probes = {t_min - 5, t_min, t_max, t_max + 5};
  for (int i = 1; i <= 15; ++i) probes.push_back(t_min + (t_max - t_min) * i / 16);
  for (Timestamp t : probes) {
    auto snap = index_->GetSnapshot(t, kCompAll);
    ASSERT_TRUE(snap.ok()) << index_->name() << " t=" << t;
    Snapshot expected = ReplayAt(trace.events, t);
    EXPECT_TRUE(snap.value().Equals(expected))
        << index_->name() << " t=" << t << "\n" << snap.value().DiffString(expected);
  }
}

TEST_P(BaselineGroundTruthTest, ComponentFilteredRetrieval) {
  RandomTraceOptions opts;
  opts.num_events = 3000;
  opts.seed = 55;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  Build(trace.events);
  const Timestamp t = trace.events.back().time / 2;
  auto snap = index_->GetSnapshot(t, kCompStruct);
  ASSERT_TRUE(snap.ok());
  Snapshot expected = ReplayAt(trace.events, t, kCompStruct);
  EXPECT_TRUE(snap.value().Equals(expected)) << snap.value().DiffString(expected);
}

TEST_P(BaselineGroundTruthTest, GrowingOnlyTrace) {
  DblpLikeOptions opts;
  opts.target_edges = 3000;
  opts.years = 15;
  opts.attrs_per_node = 2;
  GeneratedTrace trace = GenerateDblpLikeTrace(opts);
  Build(trace.events);
  const Timestamp t_max = trace.events.back().time;
  for (int i = 1; i <= 5; ++i) {
    const Timestamp t = t_max * i / 5;
    auto snap = index_->GetSnapshot(t, kCompAll);
    ASSERT_TRUE(snap.ok());
    Snapshot expected = ReplayAt(trace.events, t);
    EXPECT_TRUE(snap.value().Equals(expected)) << index_->name() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineGroundTruthTest,
                         ::testing::Values(BaselineKind::kCopyLog, BaselineKind::kLog,
                                           BaselineKind::kLogText,
                                           BaselineKind::kIntervalTree,
                                           BaselineKind::kSegmentTree),
                         KindName);

TEST(IntervalConversionTest, IntervalsMatchEventSemantics) {
  std::vector<Event> events = {
      Event::AddNode(1, 7),
      Event::SetNodeAttr(2, 7, "k", std::nullopt, "a"),
      Event::SetNodeAttr(4, 7, "k", "a", "b"),
      Event::SetNodeAttr(6, 7, "k", "b", std::nullopt),
      Event::DeleteNode(8, 7),
  };
  auto intervals = EventsToIntervals(events);
  // Node [1, 8), attr value a [2, 4), attr value b [4, 6).
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0].start, 1);
  EXPECT_EQ(intervals[0].end, 8);
  EXPECT_EQ(intervals[1].value, "a");
  EXPECT_EQ(intervals[1].start, 2);
  EXPECT_EQ(intervals[1].end, 4);
  EXPECT_EQ(intervals[2].value, "b");
  EXPECT_EQ(intervals[2].end, 6);
}

TEST(IntervalTreeTest, HandlesSameInstantAddDelete) {
  // An element added and deleted at the same instant is never visible and
  // must not break tree construction.
  std::vector<Event> events = {
      Event::AddNode(1, 1),
      Event::AddNode(5, 2),
      Event::DeleteNode(5, 2),
      Event::AddNode(9, 3),
  };
  IntervalTreeIndex index;
  ASSERT_TRUE(index.Build(events).ok());
  auto snap = index.GetSnapshot(5, kCompAll);
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap.value().HasNode(1));
  EXPECT_FALSE(snap.value().HasNode(2));
}

TEST(BaselineComparisonTest, SegmentTreeUsesMoreMemoryThanIntervalTree) {
  RandomTraceOptions opts;
  opts.num_events = 8000;
  opts.seed = 8;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  IntervalTreeIndex itree;
  SegmentTreeIndex stree;
  ASSERT_TRUE(itree.Build(trace.events).ok());
  ASSERT_TRUE(stree.Build(trace.events).ok());
  // Section 5.4: segment trees duplicate intervals into O(log n) nodes.
  EXPECT_GT(stree.MemoryBytes(), itree.MemoryBytes());
}

TEST(BaselineComparisonTest, CopyLogUsesMoreDiskThanLog) {
  RandomTraceOptions opts;
  opts.num_events = 6000;
  opts.seed = 80;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  auto store1 = NewMemKVStore();
  auto store2 = NewMemKVStore();
  CopyLogIndex copylog(store1.get(), 500);
  LogIndex log(store2.get());
  ASSERT_TRUE(copylog.Build(trace.events).ok());
  ASSERT_TRUE(log.Build(trace.events).ok());
  EXPECT_GT(copylog.StorageBytes(), log.StorageBytes());
}

TEST(SnapshotSerdeTest, RoundTripAllComponents) {
  RandomTraceOptions opts;
  opts.num_events = 1500;
  opts.seed = 808;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  Snapshot snap = ReplayAt(trace.events, trace.events.back().time);
  std::string blob;
  EncodeSnapshot(snap, kCompAll, &blob);
  Snapshot back;
  ASSERT_TRUE(DecodeSnapshot(blob, &back).ok());
  EXPECT_TRUE(back.Equals(snap)) << back.DiffString(snap);

  // Structure-only encoding drops the attribute components.
  EncodeSnapshot(snap, kCompStruct, &blob);
  ASSERT_TRUE(DecodeSnapshot(blob, &back).ok());
  EXPECT_TRUE(back.Equals(snap.CopyFiltered(kCompStruct)));

  // Corruption is rejected.
  blob[0] = 'z';
  EXPECT_FALSE(DecodeSnapshot(blob, &back).ok());
}

TEST(TextLogCodecTest, RoundTripAllEventTypes) {
  std::vector<Event> events = {
      Event::AddNode(5, 101),
      Event::DeleteNode(9, 101),
      Event::AddEdge(7, 55, 1, 2, true),
      Event::DeleteEdge(8, 55, 1, 2, false),
      Event::SetNodeAttr(9, 3, "name", std::nullopt, "alice smith"),
      Event::SetNodeAttr(10, 3, "na me", "alice smith", std::nullopt),
      Event::SetEdgeAttr(12, 55, "w", "1", "2"),
      Event::TransientEdge(13, 4, 5, "hello world"),
      Event::TransientNode(14, 6, "blip"),
      Event::SetNodeAttr(15, 3, "dash", "-", "=x"),  // Tricky literals.
  };
  for (const auto& want : events) {
    std::string line;
    EncodeEventText(want, &line);
    Event got;
    ASSERT_TRUE(DecodeEventText(line, &got).ok()) << line;
    // The text format intentionally drops the src/dst hints on UEA events
    // (raw input files in the paper's sense); compare the material fields.
    EXPECT_EQ(got.type, want.type) << line;
    EXPECT_EQ(got.time, want.time) << line;
    EXPECT_EQ(got.node, want.node) << line;
    EXPECT_EQ(got.edge, want.edge) << line;
    EXPECT_EQ(got.key, want.key) << line;
    EXPECT_EQ(got.old_value, want.old_value) << line;
    EXPECT_EQ(got.new_value, want.new_value) << line;
  }
}

TEST(TextLogCodecTest, RejectsGarbage) {
  Event e;
  EXPECT_FALSE(DecodeEventText("", &e).ok());
  EXPECT_FALSE(DecodeEventText("XX 1 2", &e).ok());
  EXPECT_FALSE(DecodeEventText("NN 1", &e).ok());
  EXPECT_FALSE(DecodeEventText("NE 1 2 3", &e).ok());
}

}  // namespace
}  // namespace hgdb
