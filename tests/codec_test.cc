// Tests for the versioned columnar blob codec (src/codec/): v1 round-trips
// across component masks on seeded random data, backward compatibility with
// checked-in legacy v0 blobs (byte-for-byte), version-header handling, and a
// fuzz-ish malformed-blob sweep (truncations and byte flips must yield a
// Status, never a crash).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codec/delta_codec.h"
#include "codec/event_codec.h"
#include "codec/format.h"
#include "common/coding.h"
#include "deltagraph/delta_graph.h"
#include "deltagraph/skeleton.h"
#include "deltagraph/delta_store.h"
#include "graph/delta.h"
#include "graph/snapshot.h"
#include "kvstore/compression.h"
#include "kvstore/kv_store.h"
#include "temporal/event_list.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

constexpr ComponentMask kDeltaComponents[] = {kCompStruct, kCompNodeAttr,
                                              kCompEdgeAttr};
constexpr unsigned kEventSubsets[] = {
    kCompStruct,           kCompNodeAttr,
    kCompEdgeAttr,         kCompTransient,
    kCompStruct | kCompNodeAttr, kCompStruct | kCompEdgeAttr,
    kCompAll,              kCompAllWithTransient};

// ---------------------------------------------------------------------------
// v0 backward-compat fixture: blobs captured byte-for-byte from the encoder
// as it existed before the codec subsystem (PR 4 HEAD). These bytes are
// frozen — regenerating them from current code would defeat the test.
// ---------------------------------------------------------------------------

const char kV0DeltaStruct[] =
    "\x02\x0c\x01\x01\x07\x01\x05\x0c\x0d\x00\x00";
const size_t kV0DeltaStruct_len = 11;

const char kV0DeltaNodeAttr[] =
    "\x02\x03\x05\x63\x6f\x6c\x6f\x72\x04\x62\x6c\x75\x65\x0c\x05\x63"
    "\x6f\x6c\x6f\x72\x03\x72\x65\x64\x01\x03\x05\x63\x6f\x6c\x6f\x72"
    "\x03\x72\x65\x64";
const size_t kV0DeltaNodeAttr_len = 36;

const char kV0DeltaEdgeAttr[] =
    "\x01\x05\x06\x77\x65\x69\x67\x68\x74\x02\x31\x31\x00";
const size_t kV0DeltaEdgeAttr_len = 13;

const char kV0EventsStruct[] =
    "\x04\x00\x00\xc8\x01\x01\x02\x00\xca\x01\x02\x03\x02\xcc\x01\x01"
    "\x01\x02\x01\x07\x03\xd4\x01\x01\x01\x02\x01";
const size_t kV0EventsStruct_len = 27;

const char kV0EventsNodeAttr[] =
    "\x02\x01\x04\xc8\x01\x01\x05\x63\x6f\x6c\x6f\x72\x00\x01\x03\x72"
    "\x65\x64\x06\x04\xd2\x01\x01\x05\x63\x6f\x6c\x6f\x72\x01\x03\x72"
    "\x65\x64\x01\x04\x62\x6c\x75\x65";
const size_t kV0EventsNodeAttr_len = 40;

const char kV0EventsEdgeAttr[] =
    "\x01\x04\x05\xce\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"
    "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01\x06\x77\x65\x69\x67\x68"
    "\x74\x00\x01\x01\x34";
const size_t kV0EventsEdgeAttr_len = 37;

const char kV0EventsTransient[] =
    "\x01\x05\x06\xd0\x01\x02\x01\x04\x70\x69\x6e\x67";
const size_t kV0EventsTransient_len = 12;

/// The exact delta the kV0Delta* fixtures encode (same construction as the
/// capture program).
Delta FixtureDelta() {
  Snapshot source, target;
  source.AddNode(3);
  source.AddNode(7);
  source.AddEdge(2, EdgeRecord{3, 7, true});
  source.SetNodeAttr(3, "color", "red");
  source.SetEdgeAttr(2, "weight", "9");
  target = source;
  target.AddNode(12);
  target.AddNode(13);
  target.RemoveNode(7);
  target.AddEdge(5, EdgeRecord{12, 13, false});
  target.SetNodeAttr(3, "color", "blue");
  target.SetNodeAttr(12, "color", "red");
  target.SetEdgeAttr(5, "weight", "11");
  return Delta::Between(target, source);
}

/// The exact eventlist the kV0Events* fixtures encode.
EventList FixtureEvents() {
  EventList el;
  el.Append(Event::AddNode(100, 1));
  el.Append(Event::SetNodeAttr(100, 1, "color", std::nullopt, "red"));
  el.Append(Event::AddNode(101, 2));
  el.Append(Event::AddEdge(102, 1, 1, 2, true));
  el.Append(Event::SetEdgeAttr(103, 1, "weight", std::nullopt, "4"));
  el.Append(Event::TransientEdge(104, 2, 1, "ping"));
  el.Append(Event::SetNodeAttr(105, 1, "color", "red", "blue"));
  el.Append(Event::DeleteEdge(106, 1, 1, 2, true));
  return el;
}

TEST(V0CompatTest, CheckedInDeltaBlobsDecode) {
  const Delta expected = FixtureDelta();
  Delta decoded;
  ASSERT_TRUE(decoded
                  .DecodeComponent(kCompStruct,
                                   Slice(kV0DeltaStruct, kV0DeltaStruct_len))
                  .ok());
  ASSERT_TRUE(decoded
                  .DecodeComponent(kCompNodeAttr,
                                   Slice(kV0DeltaNodeAttr, kV0DeltaNodeAttr_len))
                  .ok());
  ASSERT_TRUE(decoded
                  .DecodeComponent(kCompEdgeAttr,
                                   Slice(kV0DeltaEdgeAttr, kV0DeltaEdgeAttr_len))
                  .ok());
  EXPECT_TRUE(decoded == expected);
}

TEST(V0CompatTest, V0ReEncodeIsByteIdentical) {
  // The legacy writer must still produce the frozen bytes: the fixture is
  // only as strong as the v0 encoder's stability.
  const Delta d = FixtureDelta();
  std::string blob;
  codec::EncodeDeltaComponentV0(d, kCompStruct, &blob);
  EXPECT_EQ(blob, std::string(kV0DeltaStruct, kV0DeltaStruct_len));
  codec::EncodeDeltaComponentV0(d, kCompNodeAttr, &blob);
  EXPECT_EQ(blob, std::string(kV0DeltaNodeAttr, kV0DeltaNodeAttr_len));
  codec::EncodeDeltaComponentV0(d, kCompEdgeAttr, &blob);
  EXPECT_EQ(blob, std::string(kV0DeltaEdgeAttr, kV0DeltaEdgeAttr_len));

  const EventList el = FixtureEvents();
  codec::EncodeEventListComponentV0(el.events(), kCompStruct, &blob);
  EXPECT_EQ(blob, std::string(kV0EventsStruct, kV0EventsStruct_len));
  codec::EncodeEventListComponentV0(el.events(), kCompNodeAttr, &blob);
  EXPECT_EQ(blob, std::string(kV0EventsNodeAttr, kV0EventsNodeAttr_len));
  codec::EncodeEventListComponentV0(el.events(), kCompEdgeAttr, &blob);
  EXPECT_EQ(blob, std::string(kV0EventsEdgeAttr, kV0EventsEdgeAttr_len));
  codec::EncodeEventListComponentV0(el.events(), kCompTransient, &blob);
  EXPECT_EQ(blob, std::string(kV0EventsTransient, kV0EventsTransient_len));
}

TEST(V0CompatTest, CheckedInEventBlobsDecodeAndMergeInOrder) {
  const EventList expected = FixtureEvents();
  EventList decoded;
  ASSERT_TRUE(
      decoded.DecodeAndMergeComponent(Slice(kV0EventsStruct, kV0EventsStruct_len))
          .ok());
  ASSERT_TRUE(decoded
                  .DecodeAndMergeComponent(
                      Slice(kV0EventsNodeAttr, kV0EventsNodeAttr_len))
                  .ok());
  ASSERT_TRUE(decoded
                  .DecodeAndMergeComponent(
                      Slice(kV0EventsEdgeAttr, kV0EventsEdgeAttr_len))
                  .ok());
  ASSERT_TRUE(decoded
                  .DecodeAndMergeComponent(
                      Slice(kV0EventsTransient, kV0EventsTransient_len))
                  .ok());
  decoded.FinalizeMerge();
  ASSERT_EQ(decoded.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(decoded[i], expected[i]) << "index " << i;
  }
}

TEST(V0CompatTest, VersionHeaderRoundTrip) {
  // Decode the v0 fixture, re-encode in the current (v1) format, decode
  // again: the v1 blob must carry the header, and both decodes must agree
  // element-for-element.
  Delta from_v0;
  ASSERT_TRUE(from_v0
                  .DecodeComponent(kCompStruct,
                                   Slice(kV0DeltaStruct, kV0DeltaStruct_len))
                  .ok());
  ASSERT_TRUE(from_v0
                  .DecodeComponent(kCompNodeAttr,
                                   Slice(kV0DeltaNodeAttr, kV0DeltaNodeAttr_len))
                  .ok());
  std::string v1;
  from_v0.EncodeComponent(kCompNodeAttr, &v1);
  ASSERT_TRUE(codec::HasHeader(v1));
  EXPECT_FALSE(codec::HasHeader(Slice(kV0DeltaNodeAttr, kV0DeltaNodeAttr_len)));
  Delta from_v1;
  ASSERT_TRUE(from_v1.DecodeComponent(kCompNodeAttr, v1).ok());
  EXPECT_EQ(from_v1.add_node_attrs, from_v0.add_node_attrs);
  EXPECT_EQ(from_v1.del_node_attrs, from_v0.del_node_attrs);
}

// ---------------------------------------------------------------------------
// Seeded round-trip property tests
// ---------------------------------------------------------------------------

class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, DeltaRoundTripAllComponentsBothVersions) {
  RandomTraceOptions opts;
  opts.num_events = 4000;
  opts.seed = GetParam();
  GeneratedTrace trace = GenerateRandomTrace(opts);
  const Timestamp t_end = trace.events.back().time;
  Snapshot g1 = ReplayAt(trace.events, t_end / 2);
  Snapshot g2 = ReplayAt(trace.events, t_end);
  const Delta d = Delta::Between(g2, g1);

  Delta v1_decoded, v0_decoded;
  for (ComponentMask c : kDeltaComponents) {
    std::string blob;
    d.EncodeComponent(c, &blob);
    ASSERT_TRUE(codec::HasHeader(blob)) << "seed " << GetParam();
    ASSERT_TRUE(v1_decoded.DecodeComponent(c, blob).ok()) << "seed " << GetParam();
    // The legacy writer/reader pair must stay equivalent (it is the
    // compat path for pre-codec indexes).
    codec::EncodeDeltaComponentV0(d, c, &blob);
    ASSERT_TRUE(v0_decoded.DecodeComponent(c, blob).ok()) << "seed " << GetParam();
  }
  EXPECT_TRUE(v1_decoded == d) << "seed " << GetParam();
  EXPECT_TRUE(v0_decoded == d) << "seed " << GetParam();
}

TEST_P(CodecPropertyTest, EventListRoundTripAllSubsetsBothVersions) {
  RandomTraceOptions opts;
  opts.num_events = 3000;
  opts.seed = GetParam() + 1000;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  const EventList el(trace.events);

  for (unsigned mask : kEventSubsets) {
    std::vector<Event> expected;
    for (const auto& e : el.events()) {
      if (e.component() & mask) expected.push_back(e);
    }
    for (bool v0 : {false, true}) {
      EventList decoded;
      // One blob per component bit, merged — the DeltaStore read path.
      for (unsigned c : {kCompStruct, kCompNodeAttr, kCompEdgeAttr, kCompTransient}) {
        if ((mask & c) == 0) continue;
        std::string blob;
        if (v0) {
          codec::EncodeEventListComponentV0(
              el.events(), static_cast<ComponentMask>(c), &blob);
        } else {
          el.EncodeComponent(static_cast<ComponentMask>(c), &blob);
        }
        ASSERT_TRUE(decoded.DecodeAndMergeComponent(blob).ok())
            << "seed " << GetParam() << " mask " << mask << " v0 " << v0;
      }
      decoded.FinalizeMerge();
      ASSERT_EQ(decoded.size(), expected.size())
          << "seed " << GetParam() << " mask " << mask << " v0 " << v0;
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(decoded[i], expected[i])
            << "seed " << GetParam() << " mask " << mask << " index " << i;
      }
    }
  }
}

TEST_P(CodecPropertyTest, MultiBitMaskSingleBlobRoundTrip) {
  // The persisted recent eventlist encodes every component into ONE blob.
  RandomTraceOptions opts;
  opts.num_events = 1500;
  opts.seed = GetParam() + 2000;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  const EventList el(trace.events);
  std::string blob;
  el.EncodeComponent(static_cast<ComponentMask>(kCompAllWithTransient), &blob);
  EventList decoded;
  ASSERT_TRUE(decoded.DecodeAndMergeComponent(blob).ok());
  decoded.FinalizeMerge();
  ASSERT_EQ(decoded.size(), el.size());
  for (size_t i = 0; i < el.size(); ++i) {
    ASSERT_EQ(decoded[i], el[i]) << "index " << i;
  }
}

TEST_P(CodecPropertyTest, EncodingIsDeterministic) {
  RandomTraceOptions opts;
  opts.num_events = 2000;
  opts.seed = GetParam() + 3000;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  const Timestamp t_end = trace.events.back().time;
  Snapshot g1 = ReplayAt(trace.events, t_end / 3);
  Snapshot g2 = ReplayAt(trace.events, t_end);
  const Delta d = Delta::Between(g2, g1);
  for (ComponentMask c : kDeltaComponents) {
    std::string a, b;
    d.EncodeComponent(c, &a);
    d.EncodeComponent(c, &b);
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::ValuesIn(test::PropertySeeds(5, 71000)));

// ---------------------------------------------------------------------------
// v2 rebased id columns (ROADMAP 5c)
// ---------------------------------------------------------------------------

TEST(CodecV2Test, EncoderWritesVersion2AndSentinelEndpointsRoundTrip) {
  // kEdgeAttr events carry sentinel (invalid) src/dst endpoints; v2 maps the
  // all-ones sentinel to a one-byte 0 in the rebased columns. Round trip must
  // restore the exact sentinel, not a rebased garbage id.
  std::vector<Event> events;
  for (int i = 0; i < 40; ++i) {
    events.push_back(Event::SetEdgeAttr(100 + i, 5'000'000 + i * 3, "w",
                                        std::nullopt, std::to_string(i)));
  }
  std::string blob;
  codec::EncodeEventListComponent(events, kCompEdgeAttr, &blob);
  ASSERT_TRUE(codec::HasHeader(blob));
  EXPECT_EQ(static_cast<uint8_t>(blob[3]), codec::kVersion2);

  std::vector<codec::SeqEvent> decoded;
  ASSERT_TRUE(codec::DecodeEventListComponent(blob, &decoded).ok());
  ASSERT_EQ(decoded.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded[i].event, events[i]) << i;
    EXPECT_EQ(decoded[i].event.src, kInvalidNodeId) << i;
    EXPECT_EQ(decoded[i].event.dst, kInvalidNodeId) << i;
  }
}

TEST(CodecV2Test, SentinelEndpointsCostNoMoreThanValidTwins) {
  // Absolute varints would spend ten bytes per sentinel endpoint; rebased
  // columns spend one. Pin the win: the sentinel-endpoint blob must not be
  // larger than an identical blob whose endpoints are small valid ids.
  std::vector<Event> with_sentinels, with_valid;
  for (int i = 0; i < 64; ++i) {
    Event e = Event::SetEdgeAttr(10 + i, 900 + i, "weight", std::nullopt, "1");
    with_sentinels.push_back(e);
    e.src = 3;
    e.dst = 4;
    with_valid.push_back(e);
  }
  std::string a, b;
  codec::EncodeEventListComponent(with_sentinels, kCompEdgeAttr, &a);
  codec::EncodeEventListComponent(with_valid, kCompEdgeAttr, &b);
  EXPECT_LE(a.size(), b.size());
}

TEST(CodecV2Test, RebasingShrinksFarFromZeroIdColumns) {
  // Ids clustered far from zero take 5 absolute varint bytes each but 1-2
  // rebased bytes; v2 must beat the v1 absolute layout on such columns.
  std::vector<Event> events;
  for (int i = 0; i < 200; ++i) {
    events.push_back(Event::AddNode(i + 1, (1ull << 34) + i * 7));
  }
  std::string v2;
  codec::EncodeEventListComponent(events, kCompStruct, &v2);
  // The v1 twin: identical layout with absolute id columns. Build it from the
  // v2 blob's own size arithmetic instead: 200 ids x 5 bytes absolute vs
  // 1 base + 200 x <=2 bytes rebased means at least ~600 bytes of daylight,
  // far more than any framing difference.
  std::string v0;
  codec::EncodeEventListComponentV0(events, kCompStruct, &v0);
  EXPECT_LT(v2.size() + 400, v0.size());
}

TEST(CodecV2Test, HandBuiltV1AbsoluteIdBlobStillDecodes) {
  // A v1 blob frozen by hand: absolute varint id columns, no rebasing. Old
  // indexes written by a v1 build must keep decoding bit-exactly.
  const Event e0 = Event::AddNode(10, 12'345'678);
  const Event e1 = Event::AddEdge(20, 99'999, 5, 888'888, true);

  std::string blob;
  codec::PutHeader(&blob, codec::kVersion1);
  std::string meta;
  PutVarint64(&meta, 2);     // count
  PutVarint64(&meta, 0);     // seq gap to e0 (seq 0)
  PutVarint64(&meta, 1);     // seq gap to e1 (seq 1)
  PutVarsint64(&meta, 10);   // time delta to t=10
  PutVarsint64(&meta, 10);   // time delta to t=20
  meta.push_back(static_cast<char>(EventType::kAddNode));
  meta.push_back(static_cast<char>(EventType::kAddEdge));
  codec::AppendBlock(codec::kBlockEventMeta, meta, &blob);
  std::string ids;
  PutVarint64(&ids, e0.node);  // node column (absolute)
  PutVarint64(&ids, e1.edge);  // edge column
  PutVarint64(&ids, e1.src);   // src column
  PutVarint64(&ids, e1.dst);   // dst column
  codec::PutBitmap({true}, &ids);  // directed bitmap
  codec::AppendBlock(codec::kBlockEventIds, ids, &blob);

  std::vector<codec::SeqEvent> decoded;
  ASSERT_TRUE(codec::DecodeEventListComponent(blob, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].seq, 0u);
  EXPECT_EQ(decoded[1].seq, 1u);
  EXPECT_EQ(decoded[0].event, e0);
  EXPECT_EQ(decoded[1].event, e1);
}

// ---------------------------------------------------------------------------
// Malformed input: truncations and corruptions must return Status, not crash
// ---------------------------------------------------------------------------

TEST(CodecMalformedTest, UnsupportedVersionRejected) {
  Delta d = FixtureDelta();
  std::string blob;
  d.EncodeComponent(kCompStruct, &blob);
  ASSERT_TRUE(codec::HasHeader(blob));
  blob[3] = '\x09';  // Future version byte.
  Delta decoded;
  Status s = decoded.DecodeComponent(kCompStruct, blob);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(CodecMalformedTest, EveryTruncationFailsCleanly) {
  const Delta d = FixtureDelta();
  const EventList el = FixtureEvents();
  for (ComponentMask c : kDeltaComponents) {
    std::string blob;
    d.EncodeComponent(c, &blob);
    for (size_t len = 0; len < blob.size(); ++len) {
      Delta decoded;
      // Must return; whether OK (an empty prefix can be a valid empty blob)
      // or Corruption is length-dependent, but it must never crash or hang.
      (void)decoded.DecodeComponent(c, Slice(blob.data(), len));
    }
  }
  std::string blob;
  el.EncodeComponent(static_cast<ComponentMask>(kCompAllWithTransient), &blob);
  for (size_t len = 0; len < blob.size(); ++len) {
    EventList decoded;
    (void)decoded.DecodeAndMergeComponent(Slice(blob.data(), len));
  }
}

TEST(CodecMalformedTest, SeededByteFlipsFailCleanly) {
  // Fuzz-ish sweep: flip random bytes (and random bit patterns) in valid
  // blobs; decode must always return. Seeded via test_util so failures replay.
  RandomTraceOptions opts;
  opts.num_events = 800;
  opts.seed = 4242;
  GeneratedTrace trace = GenerateRandomTrace(opts);
  const EventList el(trace.events);
  const Timestamp t_end = trace.events.back().time;
  const Delta d =
      Delta::Between(ReplayAt(trace.events, t_end), ReplayAt(trace.events, t_end / 2));

  for (uint64_t seed : test::PropertySeeds(3, 91000)) {
    test::SeededRng rng(seed);
    SCOPED_TRACE(rng.Desc());
    for (ComponentMask c : kDeltaComponents) {
      std::string blob;
      d.EncodeComponent(c, &blob);
      if (blob.empty()) continue;
      for (int flip = 0; flip < 200; ++flip) {
        std::string mutated = blob;
        mutated[rng.Uniform(mutated.size())] =
            static_cast<char>(rng.Uniform(256));
        Delta decoded;
        (void)decoded.DecodeComponent(c, mutated);
      }
    }
    std::string blob;
    el.EncodeComponent(static_cast<ComponentMask>(kCompAllWithTransient), &blob);
    for (int flip = 0; flip < 400; ++flip) {
      std::string mutated = blob;
      mutated[rng.Uniform(mutated.size())] = static_cast<char>(rng.Uniform(256));
      EventList decoded;
      (void)decoded.DecodeAndMergeComponent(mutated);
    }
  }
}

TEST(CodecMalformedTest, AbsurdCompressedLengthRejected) {
  // A compressed block frame whose claimed uncompressed size is absurd must
  // be rejected before any allocation is attempted.
  std::string blob;
  codec::PutHeader(&blob);
  std::string packed;
  PutVarint64(&packed, uint64_t{1} << 60);  // Claimed raw size.
  packed += "junk";
  blob.push_back(static_cast<char>(codec::kBlockNodeAdds | codec::kBlockCompressedBit));
  PutVarint64(&blob, packed.size());
  blob += packed;
  Delta decoded;
  Status s = decoded.DecodeComponent(kCompStruct, blob);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(CodecMalformedTest, DictIndexAliasingThroughUint32Rejected) {
  // An index of k*2^32 + j must not silently resolve to entry j.
  std::string dict_payload;
  PutVarint64(&dict_payload, 1);  // One entry: "k".
  PutLengthPrefixedSlice(&dict_payload, Slice("k"));
  std::string attrs_payload;
  PutVarint64(&attrs_payload, 1);                  // One entry.
  PutVarint64(&attrs_payload, 7);                  // Owner.
  PutVarint64(&attrs_payload, (uint64_t{1} << 32));  // Key idx: aliases 0.
  PutVarint64(&attrs_payload, 0);                  // Value idx.
  std::string blob;
  codec::PutHeader(&blob);
  codec::AppendBlock(codec::kBlockDict, dict_payload, &blob);
  codec::AppendBlock(codec::kBlockAttrAdds, attrs_payload, &blob);
  Delta decoded;
  Status s = decoded.DecodeComponent(kCompNodeAttr, blob);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(CodecMalformedTest, TrailingGarbageAndBadDictIndexRejected) {
  Delta d = FixtureDelta();
  std::string blob;
  d.EncodeComponent(kCompNodeAttr, &blob);
  Delta decoded;
  // Trailing garbage after the last block: the frame parser must reject it.
  EXPECT_FALSE(decoded.DecodeComponent(kCompNodeAttr, blob + "garbage!").ok());
  // A duplicate block is corruption.
  std::string doubled = blob;
  doubled.append(blob.data() + 4, blob.size() - 4);  // Re-append body blocks.
  EXPECT_FALSE(decoded.DecodeComponent(kCompNodeAttr, doubled).ok());
}

// ---------------------------------------------------------------------------
// Cross-layer invariants
// ---------------------------------------------------------------------------

TEST(CodecKvTest, KvLayerStoresCodecBlobsRaw) {
  // kvstore/compression sniffs the codec magic (its own copy of the three
  // bytes) and skips the redundant whole-value LZ pass. This test pins the
  // two constants together: if they drift, the size identity breaks.
  Delta d = FixtureDelta();
  std::string blob;
  d.EncodeComponent(kCompNodeAttr, &blob);
  ASSERT_TRUE(codec::HasHeader(blob));
  std::string stored;
  CompressValue(blob, &stored);
  EXPECT_EQ(stored.size(), blob.size() + 1);  // One tag byte, no transform.
  std::string back;
  ASSERT_TRUE(DecompressValue(stored, &back).ok());
  EXPECT_EQ(back, blob);
}

TEST(CodecKvTest, DeltaStoreRoundTripsThroughKvStore) {
  auto store = NewMemKVStore();
  DeltaStore ds(store.get());
  const Delta d = FixtureDelta();
  ComponentSizes sizes;
  ASSERT_TRUE(ds.PutDelta(1, d, &sizes).ok());
  Delta back;
  ASSERT_TRUE(ds.GetDelta(1, kCompAll, sizes, &back).ok());
  EXPECT_TRUE(back == d);

  const EventList el = FixtureEvents();
  ASSERT_TRUE(ds.PutEventList(2, el, &sizes).ok());
  EventList el_back;
  ASSERT_TRUE(ds.GetEventList(2, kCompAllWithTransient, sizes, &el_back).ok());
  ASSERT_EQ(el_back.size(), el.size());
  for (size_t i = 0; i < el.size(); ++i) EXPECT_EQ(el_back[i], el[i]);
}

TEST(CodecKvTest, GetBatchMixesHitsMissesAndErrors) {
  auto store = NewMemKVStore();
  DeltaStore ds(store.get());
  const Delta d = FixtureDelta();
  const EventList el = FixtureEvents();
  ComponentSizes d_sizes, el_sizes;
  ASSERT_TRUE(ds.PutDelta(1, d, &d_sizes).ok());
  ASSERT_TRUE(ds.PutEventList(2, el, &el_sizes).ok());

  // Warm the decoded LRU with the delta only.
  Delta warm;
  ASSERT_TRUE(ds.GetDelta(1, kCompAll, d_sizes, &warm).ok());

  const size_t mg_before = ds.batched_multigets();
  std::vector<DeltaStore::BatchedRead> batch(3);
  batch[0].id = 1;  // LRU hit.
  batch[0].components = kCompAll;
  batch[0].sizes = d_sizes;
  batch[1].id = 2;  // Miss -> fetched in the single MultiGet.
  batch[1].components = kCompAllWithTransient;
  batch[1].sizes = el_sizes;
  batch[1].is_eventlist = true;
  batch[2].id = 99;  // Never stored, but sizes claim bytes: NotFound.
  batch[2].components = kCompStruct;
  batch[2].sizes.bytes[0] = 10;
  ds.GetBatch(&batch);

  ASSERT_TRUE(batch[0].status.ok());
  ASSERT_NE(batch[0].delta, nullptr);
  EXPECT_TRUE(*batch[0].delta == d);
  ASSERT_TRUE(batch[1].status.ok());
  ASSERT_EQ(batch[1].events->size(), el.size());
  EXPECT_TRUE(batch[2].status.IsNotFound()) << batch[2].status.ToString();
  // The two misses shared one MultiGet round-trip.
  EXPECT_EQ(ds.batched_multigets(), mg_before + 1);

  // A second batch of pure hits performs no round-trip at all.
  std::vector<DeltaStore::BatchedRead> hits(1);
  hits[0].id = 2;
  hits[0].components = kCompAllWithTransient;
  hits[0].sizes = el_sizes;
  hits[0].is_eventlist = true;
  ds.GetBatch(&hits);
  ASSERT_TRUE(hits[0].status.ok());
  EXPECT_EQ(ds.batched_multigets(), mg_before + 1);
}

TEST(CodecKvTest, IndexFormatVersionGate) {
  auto store = NewMemKVStore();
  {
    DeltaGraphOptions opts;
    opts.leaf_size = 4;
    auto dg = DeltaGraph::Create(store.get(), opts);
    ASSERT_TRUE(dg.ok());
    for (int i = 1; i <= 12; ++i) {
      ASSERT_TRUE((*dg)->Append(Event::AddNode(i, i)).ok());
    }
    ASSERT_TRUE((*dg)->Finalize().ok());
  }
  {  // Reopens at the current version.
    auto reopened = DeltaGraph::Open(store.get());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  }
  {  // A future version is rejected up front.
    DeltaStore ds(store.get());
    ASSERT_TRUE(ds.PutMeta("format", "9").ok());
    auto reopened = DeltaGraph::Open(store.get());
    ASSERT_FALSE(reopened.ok());
    EXPECT_TRUE(reopened.status().IsInvalidArgument());
  }
  {  // A pre-codec index (no format meta) still opens: v0 fallback.
    ASSERT_TRUE(store->Delete("m/format").ok());
    auto reopened = DeltaGraph::Open(store.get());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Skeleton blobs through the versioned container (ROADMAP 5b: the last
// pre-codec v0 blob folded into the columnar format).
// ---------------------------------------------------------------------------

// A skeleton exercising every encoded field: multiple levels, negative and
// positive boundary times, a super-root, materialized leaves, delta and
// eventlist edges, and a soft-deleted edge.
Skeleton BuildFixtureSkeleton() {
  Skeleton s;
  SkeletonNode leaf;
  leaf.is_leaf = true;
  leaf.level = 1;
  leaf.boundary_time = -50;
  leaf.element_count = 10;
  const int32_t l0 = s.AddNode(leaf);
  leaf.boundary_time = 100;
  leaf.element_count = 240;
  leaf.materialized = true;  // Runtime-only: must NOT survive a round trip.
  const int32_t l1 = s.AddNode(leaf);
  leaf.materialized = false;
  leaf.boundary_time = 1000000007;
  leaf.element_count = 0;
  const int32_t l2 = s.AddNode(leaf);
  SkeletonNode interior;
  interior.level = 2;
  interior.hierarchy = 3;
  interior.boundary_time = 100;
  interior.element_count = 500;
  const int32_t mid = s.AddNode(interior);
  SkeletonNode root;
  root.level = 3;
  root.is_super_root = true;
  const int32_t top = s.AddNode(root);
  s.SetSuperRoot(top);

  SkeletonEdge delta;
  delta.from = mid;
  delta.to = l0;
  delta.delta_id = 7;
  delta.sizes.bytes[0] = 1u << 20;
  delta.sizes.elements[0] = 333;
  delta.sizes.bytes[2] = 12;
  delta.sizes.elements[2] = 4;
  s.AddEdge(delta);
  delta.to = l1;
  delta.delta_id = 8;
  s.AddEdge(delta);
  delta.from = top;
  delta.to = mid;
  delta.delta_id = 9;
  const int32_t doomed = s.AddEdge(delta);
  SkeletonEdge ev;
  ev.from = l0;
  ev.to = l1;
  ev.is_eventlist = true;
  ev.delta_id = 10;
  ev.sizes.bytes[3] = 77;
  ev.sizes.elements[3] = 6;
  s.AddEdge(ev);
  ev.from = l1;
  ev.to = l2;
  ev.delta_id = 11;
  s.AddEdge(ev);
  s.RemoveEdge(doomed);  // Soft delete must survive the round trip.
  return s;
}

void ExpectSkeletonsEqual(const Skeleton& a, const Skeleton& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.super_root(), b.super_root());
  EXPECT_EQ(a.leaves(), b.leaves());
  for (size_t i = 0; i < a.node_count(); ++i) {
    const SkeletonNode& x = a.node(static_cast<int32_t>(i));
    const SkeletonNode& y = b.node(static_cast<int32_t>(i));
    EXPECT_EQ(x.level, y.level) << "node " << i;
    EXPECT_EQ(x.is_leaf, y.is_leaf) << "node " << i;
    EXPECT_EQ(x.is_super_root, y.is_super_root) << "node " << i;
    EXPECT_EQ(x.hierarchy, y.hierarchy) << "node " << i;
    EXPECT_EQ(x.boundary_time, y.boundary_time) << "node " << i;
    EXPECT_EQ(x.element_count, y.element_count) << "node " << i;
    EXPECT_FALSE(y.materialized) << "node " << i;  // Runtime-only flag.
  }
  for (size_t i = 0; i < a.edge_count(); ++i) {
    const SkeletonEdge& x = a.edge(static_cast<int32_t>(i));
    const SkeletonEdge& y = b.edge(static_cast<int32_t>(i));
    EXPECT_EQ(x.from, y.from) << "edge " << i;
    EXPECT_EQ(x.to, y.to) << "edge " << i;
    EXPECT_EQ(x.is_eventlist, y.is_eventlist) << "edge " << i;
    EXPECT_EQ(x.deleted, y.deleted) << "edge " << i;
    EXPECT_EQ(x.delta_id, y.delta_id) << "edge " << i;
    for (int c = 0; c < kNumComponents; ++c) {
      EXPECT_EQ(x.sizes.bytes[c], y.sizes.bytes[c]) << "edge " << i;
      EXPECT_EQ(x.sizes.elements[c], y.sizes.elements[c]) << "edge " << i;
    }
  }
}

TEST(SkeletonCodecTest, ColumnarRoundTrip) {
  const Skeleton s = BuildFixtureSkeleton();
  std::string blob;
  s.EncodeTo(&blob);
  ASSERT_TRUE(codec::HasHeader(Slice(blob)));  // New blobs carry the magic.
  Skeleton back;
  ASSERT_TRUE(Skeleton::DecodeFrom(Slice(blob), &back).ok());
  ExpectSkeletonsEqual(s, back);
  // Deterministic: re-encode of the decode is byte-identical (the
  // materialized flag is the one field allowed to differ, and it encodes as
  // a flag bit — clear it on the source for the comparison).
  Skeleton s2 = BuildFixtureSkeleton();
  s2.SetMaterialized(1, false);
  std::string blob2;
  s2.EncodeTo(&blob2);
  std::string reblob;
  back.EncodeTo(&reblob);
  EXPECT_EQ(blob2, reblob);
}

TEST(SkeletonCodecTest, LegacyRowBlobStillDecodes) {
  const Skeleton s = BuildFixtureSkeleton();
  // The pre-codec v0 row layout, reproduced here exactly as the old encoder
  // wrote it (bare varint version 1, interleaved per-row fields). The decoder
  // must keep reading these from indexes finalized before the codec fold.
  std::string blob;
  PutVarint32(&blob, 1);
  PutVarint64(&blob, s.node_count());
  for (size_t i = 0; i < s.node_count(); ++i) {
    const SkeletonNode& n = s.node(static_cast<int32_t>(i));
    PutVarint32(&blob, static_cast<uint32_t>(n.level));
    unsigned char flags = 0;
    if (n.is_leaf) flags |= 1;
    if (n.is_super_root) flags |= 2;
    if (n.materialized) flags |= 4;
    blob.push_back(static_cast<char>(flags));
    PutVarint32(&blob, static_cast<uint32_t>(n.hierarchy));
    PutVarsint64(&blob, n.boundary_time);
    PutVarint64(&blob, n.element_count);
  }
  PutVarint64(&blob, s.edge_count());
  for (size_t i = 0; i < s.edge_count(); ++i) {
    const SkeletonEdge& e = s.edge(static_cast<int32_t>(i));
    PutVarint32(&blob, static_cast<uint32_t>(e.from));
    PutVarint32(&blob, static_cast<uint32_t>(e.to));
    unsigned char flags = 0;
    if (e.is_eventlist) flags |= 1;
    if (e.deleted) flags |= 2;
    blob.push_back(static_cast<char>(flags));
    PutVarint64(&blob, e.delta_id);
    for (int c = 0; c < kNumComponents; ++c) PutVarint64(&blob, e.sizes.bytes[c]);
    for (int c = 0; c < kNumComponents; ++c) PutVarint64(&blob, e.sizes.elements[c]);
  }
  PutVarint32(&blob, static_cast<uint32_t>(s.super_root() + 1));

  ASSERT_FALSE(codec::HasHeader(Slice(blob)));
  Skeleton back;
  ASSERT_TRUE(Skeleton::DecodeFrom(Slice(blob), &back).ok());
  ExpectSkeletonsEqual(s, back);
}

TEST(SkeletonCodecTest, EveryTruncationFailsCleanly) {
  const Skeleton s = BuildFixtureSkeleton();
  std::string blob;
  s.EncodeTo(&blob);
  for (size_t len = 0; len < blob.size(); ++len) {
    Skeleton back;
    const Status st = Skeleton::DecodeFrom(Slice(blob.data(), len), &back);
    EXPECT_FALSE(st.ok()) << "truncation at " << len << " decoded";
  }
}

TEST(SkeletonCodecTest, CorruptColumnsRejected) {
  const Skeleton s = BuildFixtureSkeleton();
  std::string blob;
  s.EncodeTo(&blob);
  {  // Trailing garbage after the last block.
    std::string bad = blob + "\x01";
    Skeleton back;
    EXPECT_FALSE(Skeleton::DecodeFrom(Slice(bad), &back).ok());
  }
  {  // Seeded byte flips: a Status, never a crash or an OOB endpoint.
    test::SeededRng rng(20130408);
    for (int trial = 0; trial < 64; ++trial) {
      std::string bad = blob;
      bad[rng.Uniform(bad.size())] ^= static_cast<char>(1 + rng.Uniform(255));
      Skeleton back;
      const Status st = Skeleton::DecodeFrom(Slice(bad), &back);
      if (!st.ok()) continue;
      // A flip that still decodes must at least yield in-range endpoints.
      for (size_t i = 0; i < back.edge_count(); ++i) {
        const SkeletonEdge& e = back.edge(static_cast<int32_t>(i));
        ASSERT_GE(e.from, 0);
        ASSERT_LT(static_cast<size_t>(e.from), back.node_count());
        ASSERT_GE(e.to, 0);
        ASSERT_LT(static_cast<size_t>(e.to), back.node_count());
      }
    }
  }
}

}  // namespace
}  // namespace hgdb
