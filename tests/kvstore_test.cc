#include <gtest/gtest.h>

#include <fstream>

#include "common/env_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "kvstore/compression.h"
#include "kvstore/kv_store.h"

namespace hgdb {
namespace {

// Both store implementations must satisfy the same contract; run the whole
// suite against each.
enum class StoreKind { kMem, kDisk };

class KVStoreTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    dir_ = FreshScratchDir("kvstore_test");
    Reopen();
  }

  void Reopen(KVStoreOptions options = {}) {
    store_.reset();
    if (GetParam() == StoreKind::kMem) {
      store_ = NewMemKVStore(options);
    } else {
      ASSERT_TRUE(OpenDiskKVStore(dir_ + "/db.log", options, &store_).ok());
    }
  }

  bool persistent() const { return GetParam() == StoreKind::kDisk; }

  std::string dir_;
  std::unique_ptr<KVStore> store_;
};

TEST_P(KVStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(store_->Put("k1", "v1").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k1", &v).ok());
  EXPECT_EQ(v, "v1");
}

TEST_P(KVStoreTest, GetMissingIsNotFound) {
  std::string v;
  Status s = store_->Get("nope", &v);
  EXPECT_TRUE(s.IsNotFound());
}

TEST_P(KVStoreTest, OverwriteReplacesValue) {
  ASSERT_TRUE(store_->Put("k", "a").ok());
  ASSERT_TRUE(store_->Put("k", "bb").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "bb");
  EXPECT_EQ(store_->KeyCount(), 1u);
}

TEST_P(KVStoreTest, MultiGetMixedHitsAndMisses) {
  ASSERT_TRUE(store_->Put("a", "va").ok());
  ASSERT_TRUE(store_->Put("b", "vb").ok());
  ASSERT_TRUE(store_->Put("c", std::string(4096, 'x')).ok());
  std::vector<Slice> keys = {"a", "missing", "c", "b", "a"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  store_->MultiGet(keys, &values, &statuses);
  ASSERT_EQ(values.size(), keys.size());
  ASSERT_EQ(statuses.size(), keys.size());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], "va");
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ(values[2], std::string(4096, 'x'));
  EXPECT_TRUE(statuses[3].ok());
  EXPECT_EQ(values[3], "vb");
  EXPECT_TRUE(statuses[4].ok());
  EXPECT_EQ(values[4], "va");  // Repeated keys are served independently.

  // Empty batch is a no-op (and must not charge simulated latency).
  store_->MultiGet({}, &values, &statuses);
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());
}

TEST_P(KVStoreTest, MultiGetAmortizesSimulatedLatency) {
  // 10 keys at 2ms simulated seek each: serial Gets pay >= 20ms, one
  // MultiGet batch pays the seek once. Generous margins keep this stable
  // under CI scheduling noise.
  KVStoreOptions options;
  options.read_latency_us = 2000;
  Reopen(options);
  std::vector<Slice> keys;
  std::vector<std::string> backing;
  for (int i = 0; i < 10; ++i) {
    backing.push_back("k" + std::to_string(i));
    ASSERT_TRUE(store_->Put(backing.back(), "v").ok());
  }
  for (const auto& k : backing) keys.push_back(Slice(k));

  Stopwatch sw;
  std::string v;
  for (const auto& k : keys) ASSERT_TRUE(store_->Get(k, &v).ok());
  const double serial_ms = sw.ElapsedMillis();

  sw.Restart();
  std::vector<std::string> values;
  std::vector<Status> statuses;
  store_->MultiGet(keys, &values, &statuses);
  const double batch_ms = sw.ElapsedMillis();
  for (const auto& s : statuses) EXPECT_TRUE(s.ok());

  EXPECT_GE(serial_ms, 18.0);
  EXPECT_LT(batch_ms, serial_ms / 2);
}

TEST_P(KVStoreTest, DeleteRemovesKey) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_FALSE(store_->Contains("k"));
  std::string v;
  EXPECT_TRUE(store_->Get("k", &v).IsNotFound());
}

TEST_P(KVStoreTest, DeleteMissingIsOk) { EXPECT_TRUE(store_->Delete("ghost").ok()); }

TEST_P(KVStoreTest, EmptyValueRoundTrip) {
  ASSERT_TRUE(store_->Put("k", "").ok());
  std::string v = "sentinel";
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "");
}

TEST_P(KVStoreTest, BinaryKeysAndValues) {
  std::string key("\x00\x01\xff\x7f", 4);
  std::string value(256, '\0');
  for (int i = 0; i < 256; ++i) value[i] = static_cast<char>(i);
  ASSERT_TRUE(store_->Put(key, value).ok());
  std::string v;
  ASSERT_TRUE(store_->Get(key, &v).ok());
  EXPECT_EQ(v, value);
}

TEST_P(KVStoreTest, WriteBatchIsApplied) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  batch.Put("c", "3");
  ASSERT_TRUE(store_->Write(batch).ok());
  EXPECT_FALSE(store_->Contains("a"));
  EXPECT_TRUE(store_->Contains("b"));
  EXPECT_TRUE(store_->Contains("c"));
  EXPECT_EQ(store_->KeyCount(), 2u);
}

TEST_P(KVStoreTest, ForEachKeyPrefix) {
  ASSERT_TRUE(store_->Put("d/1/s", "x").ok());
  ASSERT_TRUE(store_->Put("d/1/n", "y").ok());
  ASSERT_TRUE(store_->Put("d/2/s", "z").ok());
  ASSERT_TRUE(store_->Put("e/1/s", "w").ok());
  size_t count = 0;
  store_->ForEachKey("d/1/", [&](const Slice&) { ++count; });
  EXPECT_EQ(count, 2u);
  count = 0;
  store_->ForEachKey("", [&](const Slice&) { ++count; });
  EXPECT_EQ(count, 4u);
}

TEST_P(KVStoreTest, LargeCompressibleValue) {
  std::string big;
  for (int i = 0; i < 5000; ++i) big += "node:" + std::to_string(i % 100) + ";";
  ASSERT_TRUE(store_->Put("big", big).ok());
  std::string v;
  ASSERT_TRUE(store_->Get("big", &v).ok());
  EXPECT_EQ(v, big);
  // Compression must actually shrink this periodic payload.
  EXPECT_LT(store_->ValueBytes(), big.size() / 2);
}

TEST_P(KVStoreTest, ManyKeysSurvive) {
  Rng rng(99);
  std::vector<std::pair<std::string, std::string>> kvs;
  for (int i = 0; i < 500; ++i) {
    kvs.emplace_back("key" + std::to_string(i), rng.String(1 + rng.Uniform(64)));
    ASSERT_TRUE(store_->Put(kvs.back().first, kvs.back().second).ok());
  }
  for (const auto& [k, want] : kvs) {
    std::string v;
    ASSERT_TRUE(store_->Get(k, &v).ok());
    EXPECT_EQ(v, want);
  }
}

TEST_P(KVStoreTest, PersistenceAcrossReopen) {
  if (!persistent()) GTEST_SKIP() << "memory store is not persistent";
  ASSERT_TRUE(store_->Put("stay", "here").ok());
  ASSERT_TRUE(store_->Put("gone", "soon").ok());
  ASSERT_TRUE(store_->Delete("gone").ok());
  ASSERT_TRUE(store_->Sync().ok());
  Reopen();
  std::string v;
  ASSERT_TRUE(store_->Get("stay", &v).ok());
  EXPECT_EQ(v, "here");
  EXPECT_FALSE(store_->Contains("gone"));
}

TEST_P(KVStoreTest, TornTailIsIgnoredOnRecovery) {
  if (!persistent()) GTEST_SKIP() << "memory store is not persistent";
  ASSERT_TRUE(store_->Put("good", "value").ok());
  ASSERT_TRUE(store_->Sync().ok());
  store_.reset();
  // Append garbage simulating a torn write.
  {
    std::ofstream f(dir_ + "/db.log", std::ios::binary | std::ios::app);
    f.write("\x01\x05garbage-without-checksum", 10);
  }
  Reopen();
  std::string v;
  ASSERT_TRUE(store_->Get("good", &v).ok());
  EXPECT_EQ(v, "value");
  EXPECT_EQ(store_->KeyCount(), 1u);
  // The store must keep accepting writes after recovery.
  ASSERT_TRUE(store_->Put("after", "crash").ok());
  ASSERT_TRUE(store_->Get("after", &v).ok());
  EXPECT_EQ(v, "crash");
}

TEST_P(KVStoreTest, CompressionDisabled) {
  Reopen(KVStoreOptions{.compress_values = false});
  std::string big(10000, 'z');
  ASSERT_TRUE(store_->Put("big", big).ok());
  std::string v;
  ASSERT_TRUE(store_->Get("big", &v).ok());
  EXPECT_EQ(v, big);
  EXPECT_GE(store_->ValueBytes(), big.size());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, KVStoreTest,
                         ::testing::Values(StoreKind::kMem, StoreKind::kDisk),
                         [](const auto& info) {
                           return info.param == StoreKind::kMem ? "Mem" : "Disk";
                         });

// --- Compression codec ------------------------------------------------------

TEST(CompressionTest, RoundTripEmpty) {
  std::string out, back;
  CompressValue(Slice(""), &out);
  ASSERT_TRUE(DecompressValue(out, &back).ok());
  EXPECT_EQ(back, "");
}

TEST(CompressionTest, RoundTripIncompressible) {
  Rng rng(5);
  std::string data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<char>(rng.Uniform(256)));
  std::string out, back;
  CompressValue(data, &out);
  ASSERT_TRUE(DecompressValue(out, &back).ok());
  EXPECT_EQ(back, data);
  EXPECT_LE(out.size(), data.size() + 1);  // Raw fallback: 1 byte of overhead.
}

TEST(CompressionTest, CompressesRepetitiveData) {
  std::string data;
  for (int i = 0; i < 300; ++i) data += "attribute_key_" + std::to_string(i % 7);
  std::string out, back;
  CompressValue(data, &out);
  EXPECT_LT(out.size(), data.size() / 3);
  ASSERT_TRUE(DecompressValue(out, &back).ok());
  EXPECT_EQ(back, data);
}

TEST(CompressionTest, OverlappingMatches) {
  // "aaaa..." exercises self-referencing (overlapping) copies.
  std::string data(5000, 'a');
  std::string out, back;
  CompressValue(data, &out);
  EXPECT_LT(out.size(), 100u);
  ASSERT_TRUE(DecompressValue(out, &back).ok());
  EXPECT_EQ(back, data);
}

TEST(CompressionTest, RandomRoundTripSweep) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::string data;
    const size_t n = rng.Uniform(4096);
    // A mix of random bytes and repeated runs.
    while (data.size() < n) {
      if (rng.Chance(0.5)) {
        data.append(rng.String(1 + rng.Uniform(16)));
      } else {
        data.append(1 + rng.Uniform(32), static_cast<char>('A' + rng.Uniform(26)));
      }
    }
    std::string out, back;
    CompressValue(data, &out);
    ASSERT_TRUE(DecompressValue(out, &back).ok()) << "trial " << trial;
    ASSERT_EQ(back, data) << "trial " << trial;
  }
}

TEST(CompressionTest, CorruptInputIsRejectedNotCrashing) {
  std::string data;
  for (int i = 0; i < 100; ++i) data += "abcabcabc" + std::to_string(i);
  std::string out;
  CompressValue(data, &out);
  ASSERT_GT(out.size(), 4u);
  // Flip bytes around the stream; decoder must return an error or a value,
  // never crash. (Checksum integrity is the log layer's job, not the codec's.)
  for (size_t i = 0; i < out.size(); i += 3) {
    std::string corrupt = out;
    corrupt[i] ^= 0x5a;
    std::string back;
    (void)DecompressValue(corrupt, &back);
  }
  std::string truncated = out.substr(0, out.size() / 2);
  std::string back;
  (void)DecompressValue(truncated, &back);
}

TEST(CompressionTest, UnknownTagRejected) {
  std::string bad = "\x07payload";
  std::string back;
  EXPECT_TRUE(DecompressValue(bad, &back).IsCorruption());
}

}  // namespace
}  // namespace hgdb
