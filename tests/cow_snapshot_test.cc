// Coverage for the copy-on-write Snapshot core: COW aliasing semantics
// (mutate-after-share leaves the sibling untouched), structure sharing on
// copy (including an allocation-count proof), chunk-granular sharing across
// emitted snapshots (including an allocation proof that a post-emit mutation
// epoch costs O(touched chunks), not O(store)), the chunked id containers
// against std oracles, the string interner, the flat-hash spine containers,
// and the DeltaStore decoded-object LRU.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <unordered_map>
#include <unordered_set>

#include "common/chunked_store.h"
#include "common/flat_hash.h"
#include "common/interner.h"
#include "deltagraph/delta_store.h"
#include "graph/snapshot.h"
#include "kvstore/kv_store.h"
#include "tests/test_util.h"

// ---------------------------------------------------------------------------
// Global allocation counters (this test binary only): prove that copying a
// Snapshot performs no per-element work, and that a mutation epoch after an
// emit allocates in proportion to the chunks it touches.
// ---------------------------------------------------------------------------

namespace {
std::atomic<size_t> g_alloc_count{0};
std::atomic<size_t> g_alloc_bytes{0};
}  // namespace

void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  const size_t a =
      static_cast<size_t>(align) < sizeof(void*) ? sizeof(void*)
                                                 : static_cast<size_t>(align);
  void* p = nullptr;
  if (posix_memalign(&p, a, size) == 0) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept { std::free(p); }

namespace hgdb {
namespace {

Snapshot MakeSample() {
  Snapshot g;
  for (NodeId n = 1; n <= 50; ++n) g.AddNode(n);
  for (EdgeId e = 100; e < 140; ++e) {
    g.AddEdge(e, EdgeRecord{e - 100 + 1, e - 100 + 2, false});
  }
  for (NodeId n = 1; n <= 20; ++n) {
    g.SetNodeAttr(n, "name", "node-" + std::to_string(n));
    g.SetNodeAttr(n, "color", n % 2 ? "red" : "blue");
  }
  for (EdgeId e = 100; e < 110; ++e) g.SetEdgeAttr(e, "weight", std::to_string(e));
  return g;
}

// ---------------------------------------------------------------------------
// COW sharing
// ---------------------------------------------------------------------------

TEST(CowSnapshotTest, CopySharesAllStores) {
  Snapshot a = MakeSample();
  Snapshot b = a;
  EXPECT_TRUE(b.SharesAllStoresWith(a));
  EXPECT_TRUE(a.Equals(b));
}

TEST(CowSnapshotTest, CopyCostsNoAllocations) {
  Snapshot a = MakeSample();
  const size_t before = g_alloc_count.load();
  Snapshot b = a;
  const size_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u) << "snapshot copy must not allocate";
  EXPECT_TRUE(b.SharesAllStoresWith(a));
}

TEST(CowSnapshotTest, MutateNodesAfterShareLeavesSiblingUntouched) {
  Snapshot a = MakeSample();
  Snapshot b = a;
  ASSERT_TRUE(b.AddNode(999));
  EXPECT_TRUE(b.HasNode(999));
  EXPECT_FALSE(a.HasNode(999));
  // Only the node store diverged; the other three are still shared.
  EXPECT_FALSE(b.SharesNodeStoreWith(a));
  EXPECT_TRUE(b.SharesEdgeStoreWith(a));
  EXPECT_TRUE(b.SharesNodeAttrStoreWith(a));
  EXPECT_TRUE(b.SharesEdgeAttrStoreWith(a));

  ASSERT_TRUE(b.RemoveNode(999));
  EXPECT_TRUE(a.Equals(b)) << a.DiffString(b);
}

TEST(CowSnapshotTest, MutateEdgesAfterShareLeavesSiblingUntouched) {
  Snapshot a = MakeSample();
  Snapshot b = a;
  ASSERT_TRUE(b.RemoveEdge(100));
  EXPECT_FALSE(b.HasEdge(100));
  EXPECT_TRUE(a.HasEdge(100));
  EXPECT_FALSE(b.SharesEdgeStoreWith(a));
  EXPECT_TRUE(b.SharesNodeStoreWith(a));
}

TEST(CowSnapshotTest, MutateNodeAttrsAfterShareLeavesSiblingUntouched) {
  Snapshot a = MakeSample();
  Snapshot b = a;
  b.SetNodeAttr(1, "name", "changed");
  EXPECT_EQ(*b.GetNodeAttr(1, "name"), "changed");
  EXPECT_EQ(*a.GetNodeAttr(1, "name"), "node-1");
  EXPECT_FALSE(b.SharesNodeAttrStoreWith(a));
  EXPECT_TRUE(b.SharesEdgeAttrStoreWith(a));

  Snapshot c = a;
  c.RemoveNodeAttr(1, "name");
  EXPECT_EQ(c.GetNodeAttr(1, "name"), nullptr);
  EXPECT_NE(a.GetNodeAttr(1, "name"), nullptr);
}

TEST(CowSnapshotTest, MutateEdgeAttrsAfterShareLeavesSiblingUntouched) {
  Snapshot a = MakeSample();
  Snapshot b = a;
  b.SetEdgeAttr(100, "weight", "override");
  EXPECT_EQ(*b.GetEdgeAttr(100, "weight"), "override");
  EXPECT_EQ(*a.GetEdgeAttr(100, "weight"), "100");
  EXPECT_FALSE(b.SharesEdgeAttrStoreWith(a));
  EXPECT_TRUE(b.SharesNodeAttrStoreWith(a));
}

TEST(CowSnapshotTest, NoOpMutationsDoNotBreakSharing) {
  Snapshot a = MakeSample();
  Snapshot b = a;
  // All of these are no-ops and must not trigger a clone.
  EXPECT_FALSE(b.AddNode(1));           // Already present.
  EXPECT_FALSE(b.RemoveNode(999));      // Absent.
  EXPECT_FALSE(b.RemoveEdge(999));      // Absent.
  b.RemoveNodeAttr(1, "no-such-key");
  b.SetNodeAttr(1, "name", "node-1");   // Same value.
  EXPECT_TRUE(b.SharesAllStoresWith(a));
}

TEST(CowSnapshotTest, CopyFilteredSharesSelectedStores) {
  Snapshot a = MakeSample();
  Snapshot structs = a.CopyFiltered(kCompStruct);
  EXPECT_TRUE(structs.SharesNodeStoreWith(a));
  EXPECT_TRUE(structs.SharesEdgeStoreWith(a));
  EXPECT_EQ(structs.NodeAttrCount(), 0u);
  EXPECT_EQ(structs.EdgeAttrCount(), 0u);

  // Mutating the filtered copy must not leak into the original.
  structs.AddNode(12345);
  EXPECT_FALSE(a.HasNode(12345));

  Snapshot attrs = a.CopyFiltered(kCompNodeAttr | kCompEdgeAttr);
  EXPECT_EQ(attrs.NodeCount(), 0u);
  EXPECT_EQ(attrs.NodeAttrCount(), a.NodeAttrCount());
}

TEST(CowSnapshotTest, ChainOfCopiesDivergesIndependently) {
  Snapshot a = MakeSample();
  Snapshot b = a;
  Snapshot c = b;
  b.AddNode(500);
  c.AddNode(600);
  EXPECT_FALSE(a.HasNode(500));
  EXPECT_FALSE(a.HasNode(600));
  EXPECT_TRUE(b.HasNode(500));
  EXPECT_FALSE(b.HasNode(600));
  EXPECT_TRUE(c.HasNode(600));
  EXPECT_FALSE(c.HasNode(500));
}

TEST(CowSnapshotTest, AbsorbDisjointStealsIntoEmptyAndMerges) {
  Snapshot a;
  Snapshot b = MakeSample();
  const Snapshot b_copy = b;
  a.AbsorbDisjoint(std::move(b));
  EXPECT_TRUE(a.Equals(b_copy));

  // Merge path: disjoint id ranges combine fully.
  Snapshot c;
  c.AddNode(1000);
  c.SetNodeAttr(1000, "name", "extra");
  Snapshot d = a.CopyFiltered(kCompAll);
  d.AbsorbDisjoint(std::move(c));
  EXPECT_TRUE(d.HasNode(1000));
  EXPECT_EQ(d.NodeCount(), b_copy.NodeCount() + 1);
  EXPECT_EQ(d.NodeAttrCount(), b_copy.NodeAttrCount() + 1);
  // And the absorb did not corrupt the store `a` still shares.
  EXPECT_TRUE(a.Equals(b_copy));
}

TEST(CowSnapshotTest, AbsorbDisjointMergePreservesCowSibling) {
  // `other` shares its attr stores with a sibling; the merge path must copy,
  // not move — a move would silently empty the sibling's attribute maps.
  Snapshot other = MakeSample();
  const Snapshot sibling = other;
  ASSERT_TRUE(sibling.SharesNodeAttrStoreWith(other));

  Snapshot target;
  target.AddNode(5000);
  target.SetNodeAttr(5000, "name", "pre-existing");  // Forces the merge path.
  target.AbsorbDisjoint(std::move(other));

  EXPECT_EQ(sibling.NodeAttrCount(), MakeSample().NodeAttrCount());
  ASSERT_NE(sibling.GetNodeAttr(1, "name"), nullptr);
  EXPECT_EQ(*sibling.GetNodeAttr(1, "name"), "node-1");
  ASSERT_NE(target.GetNodeAttr(1, "name"), nullptr);
  EXPECT_EQ(*target.GetNodeAttr(1, "name"), "node-1");
  EXPECT_EQ(*target.GetNodeAttr(5000, "name"), "pre-existing");
  ASSERT_NE(target.GetEdgeAttr(100, "weight"), nullptr);
  EXPECT_EQ(*sibling.GetEdgeAttr(100, "weight"), "100");
}

// ---------------------------------------------------------------------------
// Chunk-granular sharing (the overlay layer under the stores)
// ---------------------------------------------------------------------------

// All heap parts (spines + chunks) a snapshot references, by pointer.
std::unordered_set<const void*> Parts(const Snapshot& s) {
  std::unordered_set<const void*> parts;
  s.ForEachStorePart([&](const void* p, size_t) { parts.insert(p); });
  return parts;
}

size_t SharedParts(const Snapshot& a, const Snapshot& b) {
  const auto pa = Parts(a);
  size_t shared = 0;
  for (const void* p : Parts(b)) shared += pa.count(p);
  return shared;
}

TEST(ChunkedOverlayTest, MutationCopiesOneChunkNotTheStore) {
  Snapshot a;
  for (NodeId n = 0; n < 2048; ++n) a.AddNode(n);  // 8 set chunks (256 ids).
  Snapshot b = a;
  ASSERT_TRUE(b.SharesNodeStoreWith(a));

  b.AddNode(5000);  // Lands in a fresh chunk: old chunks all stay shared.
  EXPECT_FALSE(b.SharesNodeStoreWith(a));
  EXPECT_EQ(SharedParts(a, b), Parts(a).size() - 1);  // All but a's spine.

  Snapshot c = a;
  c.RemoveNode(700);  // Copies exactly the chunk of id 700.
  // Shared: everything except c's spine and the one diverged chunk.
  EXPECT_EQ(SharedParts(a, c), Parts(a).size() - 2);
  EXPECT_TRUE(a.HasNode(700));
  EXPECT_FALSE(c.HasNode(700));
}

TEST(ChunkedOverlayTest, ChunkBoundaryMutationsIsolateSiblings) {
  // Ids straddling a set-chunk boundary (256) and a map-chunk boundary (128)
  // live in different chunks; mutating one side must not disturb the other
  // or the COW sibling.
  Snapshot a;
  a.AddNode(255);
  a.AddNode(256);
  a.AddEdge(127, EdgeRecord{255, 256, false});
  a.AddEdge(128, EdgeRecord{256, 255, false});
  Snapshot b = a;

  ASSERT_TRUE(b.RemoveNode(256));
  ASSERT_TRUE(b.RemoveEdge(128));
  EXPECT_TRUE(a.HasNode(256));
  EXPECT_TRUE(a.HasEdge(128));
  EXPECT_TRUE(b.HasNode(255));
  EXPECT_TRUE(b.HasEdge(127));

  // The untouched boundary-neighbor chunks are still pointer-shared.
  EXPECT_GE(SharedParts(a, b), 2u);

  ASSERT_TRUE(b.AddNode(256));
  ASSERT_TRUE(b.AddEdge(128, EdgeRecord{256, 255, false}));
  EXPECT_TRUE(a.Equals(b)) << a.DiffString(b);
}

TEST(ChunkedOverlayTest, DeleteThenReinsertInSameChunkRestoresEquality) {
  Snapshot a;
  for (NodeId n = 0; n < 600; ++n) a.AddNode(n);
  for (EdgeId e = 0; e < 300; ++e) a.AddEdge(e, EdgeRecord{e, e + 1, true});
  a.SetNodeAttr(5, "color", "red");
  Snapshot b = a;

  // Multi-element chunk: erase + reinsert inside chunk 1 (ids 256..511).
  ASSERT_TRUE(b.RemoveNode(300));
  ASSERT_TRUE(b.AddNode(300));
  ASSERT_TRUE(b.RemoveEdge(130));
  ASSERT_TRUE(b.AddEdge(130, EdgeRecord{130, 131, true}));
  EXPECT_TRUE(a.Equals(b)) << a.DiffString(b);

  // Attr delete + re-set in the same chunk.
  b.RemoveNodeAttr(5, "color");
  b.SetNodeAttr(5, "color", "red");
  EXPECT_TRUE(a.Equals(b)) << a.DiffString(b);

  // Single-element chunk: erasing the last element drops the chunk from the
  // spine; reinsertion recreates it.
  Snapshot c;
  c.AddNode(1 << 20);
  Snapshot d = c;
  ASSERT_TRUE(d.RemoveNode(1 << 20));
  EXPECT_TRUE(c.HasNode(1 << 20));
  EXPECT_FALSE(d.HasNode(1 << 20));
  EXPECT_EQ(d.NodeCount(), 0u);
  ASSERT_TRUE(d.AddNode(1 << 20));
  EXPECT_TRUE(c.Equals(d));
}

TEST(ChunkedOverlayTest, CopyFilteredOverSharedSpineDivergesPerChunk) {
  Snapshot a = MakeSample();
  Snapshot structs = a.CopyFiltered(kCompStruct);
  ASSERT_TRUE(structs.SharesNodeStoreWith(a));

  // Mutating the filtered copy clones its spine + one chunk; every other
  // chunk keeps aliasing the original.
  structs.AddNode(12345);
  EXPECT_FALSE(a.HasNode(12345));
  EXPECT_FALSE(structs.SharesNodeStoreWith(a));
  EXPECT_GE(SharedParts(a, structs), 1u);

  // And attr mutations on the original do not reach the struct-only copy.
  a.SetNodeAttr(1, "name", "rewritten");
  EXPECT_EQ(structs.GetNodeAttr(1, "name"), nullptr);
  EXPECT_EQ(structs.NodeAttrCount(), 0u);
}

TEST(ChunkedOverlayTest, EmitEpochAllocatesTouchedChunksNotStores) {
  // A large snapshot; then an "emit" (COW share) followed by a small
  // mutation epoch, as the plan executor does between two emit points. The
  // epoch must allocate memory proportional to the handful of chunks it
  // touches — not to the ~full-store clone the pre-chunking code paid.
  Snapshot big;
  for (NodeId n = 0; n < 40000; ++n) big.AddNode(n);
  for (EdgeId e = 0; e < 20000; ++e) {
    big.AddEdge(e, EdgeRecord{e % 40000, (e + 1) % 40000, false});
  }
  for (NodeId n = 0; n < 5000; ++n) {
    big.SetNodeAttr(n, "label", "node-" + std::to_string(n % 100));
  }
  const size_t store_bytes = big.MemoryBytes();
  ASSERT_GT(store_bytes, 400u * 1024);

  Snapshot emitted = big;  // The emit: O(1), shares everything.
  const size_t count_before = g_alloc_count.load();
  const size_t bytes_before = g_alloc_bytes.load();
  // The epoch: one structural add, one delete, one attr change — touches
  // three stores, one chunk each (plus the three spine copies).
  ASSERT_TRUE(big.AddNode(40001));
  ASSERT_TRUE(big.RemoveEdge(7));
  big.SetNodeAttr(3, "label", "changed");
  const size_t epoch_count = g_alloc_count.load() - count_before;
  const size_t epoch_bytes = g_alloc_bytes.load() - bytes_before;

  // O(touched chunks): a few spine tables (pointer arrays), three chunks,
  // and the attr copies inside the one cloned attr chunk. Far below any
  // whole-store clone both in allocation count and in bytes.
  EXPECT_LE(epoch_count, 200u) << "epoch allocation count should be O(chunks)";
  EXPECT_LE(epoch_bytes * 5, store_bytes)
      << "epoch bytes " << epoch_bytes << " vs stores " << store_bytes;

  // The emitted snapshot is untouched by the epoch.
  EXPECT_FALSE(emitted.HasNode(40001));
  EXPECT_TRUE(emitted.HasEdge(7));
  EXPECT_EQ(*emitted.GetNodeAttr(3, "label"), "node-3");
}

// ---------------------------------------------------------------------------
// Chunked containers vs std oracles
// ---------------------------------------------------------------------------

TEST(ChunkedStoreTest, MapMatchesStdReferenceUnderChurn) {
  ChunkedIdMap<uint64_t, uint64_t> m;
  std::unordered_map<uint64_t, uint64_t> ref;
  test::SeededRng rng(4242);
  for (int i = 0; i < 50000; ++i) {
    // Mix dense low keys (constant intra-chunk churn) with sparse strided
    // keys (the hash spine's sparse-range handling).
    const uint64_t key = rng.Chance(0.8) ? rng.Uniform(512)
                                         : (1 + rng.Uniform(64)) * 1000000007ull;
    switch (rng.Uniform(3)) {
      case 0:
        EXPECT_EQ(m.emplace(key, static_cast<uint64_t>(i)).second,
                  ref.emplace(key, static_cast<uint64_t>(i)).second);
        break;
      case 1:
        m[key] = static_cast<uint64_t>(i);
        ref[key] = static_cast<uint64_t>(i);
        break;
      case 2:
        EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        break;
    }
  }
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const uint64_t* mine = m.FindValue(k);
    ASSERT_NE(mine, nullptr) << k;
    EXPECT_EQ(*mine, v);
  }
  size_t iterated = 0;
  for (const auto& [k, v] : m) {
    ASSERT_TRUE(ref.contains(k)) << k;
    EXPECT_EQ(ref[k], v);
    ++iterated;
  }
  EXPECT_EQ(iterated, ref.size());
}

TEST(ChunkedStoreTest, SetMatchesStdReferenceUnderChurn) {
  ChunkedIdSet<uint64_t> s;
  std::unordered_set<uint64_t> ref;
  test::SeededRng rng(777);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t key = rng.Chance(0.8) ? rng.Uniform(700)
                                         : (1 + rng.Uniform(64)) * 2654435761ull;
    if (rng.Uniform(2) == 0) {
      EXPECT_EQ(s.insert(key), ref.insert(key).second);
    } else {
      EXPECT_EQ(s.erase(key), ref.erase(key) > 0);
    }
  }
  ASSERT_EQ(s.size(), ref.size());
  for (uint64_t k : ref) EXPECT_TRUE(s.contains(k));
  size_t iterated = 0;
  for (uint64_t k : s) {
    EXPECT_TRUE(ref.contains(k));
    ++iterated;
  }
  EXPECT_EQ(iterated, ref.size());
}

TEST(ChunkedStoreTest, CowSiblingStaysFrozenUnderChurn) {
  ChunkedIdMap<uint64_t, uint64_t> m;
  std::unordered_map<uint64_t, uint64_t> expected;
  test::SeededRng rng(90210);
  for (uint64_t i = 0; i < 1500; ++i) {
    const uint64_t v = rng.Uniform(1u << 30);
    m[i] = v;
    expected[i] = v;
  }
  const ChunkedIdMap<uint64_t, uint64_t> frozen = m;  // The "emit".
  for (int i = 0; i < 20000; ++i) {  // Heavy churn on the working copy.
    const uint64_t key = rng.Uniform(3000);
    if (rng.Uniform(2) == 0) {
      m[key] = static_cast<uint64_t>(i);
    } else {
      m.erase(key);
    }
  }
  ASSERT_EQ(frozen.size(), expected.size());
  for (const auto& [k, v] : expected) {
    const uint64_t* f = frozen.FindValue(k);
    ASSERT_NE(f, nullptr) << k;
    EXPECT_EQ(*f, v) << k;
  }
}

TEST(ChunkedStoreTest, EqualityIsOrderAndHistoryIndependent) {
  ChunkedIdSet<uint64_t> a, b;
  for (uint64_t i = 0; i < 1000; ++i) a.insert(i);
  for (uint64_t i = 1000; i > 0; --i) b.insert(i - 1);
  b.insert(5000);  // Extra chunk...
  b.erase(5000);   // ...fully vacated again (must leave the spine).
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.ChunkCount(), b.ChunkCount());
  b.erase(17);
  EXPECT_TRUE(a != b);

  ChunkedIdMap<uint64_t, uint64_t> x, y;
  x.reserve(4096);  // Different spine capacity, same contents.
  for (uint64_t i = 0; i < 300; ++i) {
    x[i * 97] = i;
    y[(299 - i) * 97] = 299 - i;
  }
  EXPECT_TRUE(x == y);
  y[42 * 97] = 999;
  EXPECT_TRUE(x != y);
}

// ---------------------------------------------------------------------------
// Interner
// ---------------------------------------------------------------------------

TEST(InternerTest, RoundTripAndIdentity) {
  auto& interner = StringInterner::Global();
  const AttrId a = interner.Intern("interner-test-alpha");
  const AttrId b = interner.Intern("interner-test-beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("interner-test-alpha"), a);
  EXPECT_EQ(interner.Get(a), "interner-test-alpha");
  EXPECT_EQ(interner.Get(b), "interner-test-beta");
  EXPECT_EQ(interner.Find("interner-test-alpha"), a);
  EXPECT_EQ(interner.Find("interner-test-never-interned"), kInvalidAttrId);
}

TEST(InternerTest, ReferencesStayStableAcrossGrowth) {
  auto& interner = StringInterner::Global();
  const AttrId id = interner.Intern("interner-stability-probe");
  const std::string* ptr = &interner.Get(id);
  for (int i = 0; i < 10000; ++i) {
    interner.Intern("interner-growth-" + std::to_string(i));
  }
  EXPECT_EQ(&interner.Get(id), ptr);  // Deque storage never moves strings.
  EXPECT_EQ(*ptr, "interner-stability-probe");
}

TEST(InternerTest, EmptyStringIsInternable) {
  auto& interner = StringInterner::Global();
  const AttrId id = interner.Intern("");
  EXPECT_EQ(interner.Get(id), "");
  EXPECT_EQ(interner.Intern(""), id);
}

// ---------------------------------------------------------------------------
// Flat hash containers
// ---------------------------------------------------------------------------

TEST(FlatHashTest, MapGrowthKeepsAllEntries) {
  FlatHashMap<uint64_t, uint64_t> m;
  for (uint64_t i = 0; i < 10000; ++i) m.emplace(i, i * 3);
  EXPECT_EQ(m.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    const uint64_t* v = m.FindValue(i);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i * 3);
  }
  EXPECT_FALSE(m.contains(10001));
}

TEST(FlatHashTest, MapMatchesStdReferenceUnderChurn) {
  FlatHashMap<uint64_t, uint64_t> m;
  std::unordered_map<uint64_t, uint64_t> ref;
  test::SeededRng rng(42);
  for (int i = 0; i < 50000; ++i) {
    // Small key range forces constant collision/erase/reinsert churn.
    const uint64_t key = rng.Uniform(512);
    switch (rng.Uniform(3)) {
      case 0:
        m.emplace(key, i);
        ref.emplace(key, i);
        break;
      case 1:
        m.InsertOrAssign(key, i);
        ref[key] = i;
        break;
      case 2:
        EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        break;
    }
  }
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const uint64_t* mine = m.FindValue(k);
    ASSERT_NE(mine, nullptr) << k;
    EXPECT_EQ(*mine, v);
  }
  size_t iterated = 0;
  for (const auto& [k, v] : m) {
    ASSERT_TRUE(ref.contains(k));
    EXPECT_EQ(ref[k], v);
    ++iterated;
  }
  EXPECT_EQ(iterated, ref.size());
}

TEST(FlatHashTest, EraseBackwardShiftKeepsProbeChainsIntact) {
  // Sequential ids through the mixer land arbitrarily; erase every other key
  // and verify every survivor is still reachable (a broken backward shift
  // orphans keys whose probe chain crossed the hole).
  FlatHashSet<uint64_t> s;
  for (uint64_t i = 0; i < 4096; ++i) s.insert(i);
  for (uint64_t i = 0; i < 4096; i += 2) EXPECT_TRUE(s.erase(i));
  EXPECT_EQ(s.size(), 2048u);
  for (uint64_t i = 1; i < 4096; i += 2) EXPECT_TRUE(s.contains(i)) << i;
  for (uint64_t i = 0; i < 4096; i += 2) EXPECT_FALSE(s.contains(i)) << i;
}

TEST(FlatHashTest, SetMatchesStdReferenceUnderChurn) {
  FlatHashSet<uint64_t> s;
  std::unordered_set<uint64_t> ref;
  test::SeededRng rng(7);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t key = rng.Uniform(300);
    if (rng.Uniform(2) == 0) {
      EXPECT_EQ(s.insert(key), ref.insert(key).second);
    } else {
      EXPECT_EQ(s.erase(key), ref.erase(key) > 0);
    }
  }
  ASSERT_EQ(s.size(), ref.size());
  for (uint64_t k : ref) EXPECT_TRUE(s.contains(k));
  size_t iterated = 0;
  for (uint64_t k : s) {
    EXPECT_TRUE(ref.contains(k));
    ++iterated;
  }
  EXPECT_EQ(iterated, ref.size());
}

TEST(FlatHashTest, OrderIndependentEquality) {
  FlatHashMap<uint64_t, uint64_t> a, b;
  for (uint64_t i = 0; i < 100; ++i) a.emplace(i, i);
  for (uint64_t i = 100; i > 0; --i) b.emplace(i - 1, i - 1);
  b.reserve(4096);  // Different capacity, same contents.
  EXPECT_TRUE(a == b);
  b.InsertOrAssign(5, 999);
  EXPECT_TRUE(a != b);
}

TEST(FlatHashTest, NonTrivialValuesCopyAndDestroyCleanly) {
  FlatHashMap<uint64_t, AttrMap> m;
  for (uint64_t i = 0; i < 300; ++i) {
    AttrMap attrs;
    attrs.Set(1, static_cast<AttrId>(i));
    attrs.Set(2, static_cast<AttrId>(i + 1));
    m.InsertOrAssign(i, std::move(attrs));
  }
  FlatHashMap<uint64_t, AttrMap> copy = m;
  ASSERT_EQ(copy.size(), 300u);
  for (uint64_t i = 0; i < 300; ++i) {
    const AttrMap* attrs = copy.FindValue(i);
    ASSERT_NE(attrs, nullptr);
    EXPECT_EQ(attrs->Get(1), static_cast<AttrId>(i));
  }
  EXPECT_TRUE(copy == m);
  m.erase(5);
  EXPECT_FALSE(copy == m);
}

// ---------------------------------------------------------------------------
// DeltaStore decoded-object LRU
// ---------------------------------------------------------------------------

TEST(DeltaStoreCacheTest, RepeatedGetHitsCacheAndSharesDecode) {
  auto kv = NewMemKVStore();
  DeltaStore store(kv.get());

  Snapshot empty;
  Snapshot g = MakeSample();
  Delta d = Delta::Between(g, empty);
  ComponentSizes sizes;
  const DeltaId id = store.AllocateId();
  ASSERT_TRUE(store.PutDelta(id, d, &sizes).ok());

  auto first = store.GetDeltaShared(id, kCompAll, sizes);
  ASSERT_TRUE(first.ok());
  auto second = store.GetDeltaShared(id, kCompAll, sizes);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get()) << "expected a cache hit";
  EXPECT_GE(store.decoded_cache_hits(), 1u);
  EXPECT_TRUE(*first.value() == d);

  // Different component masks are distinct cache entries.
  auto structs = store.GetDeltaShared(id, kCompStruct, sizes);
  ASSERT_TRUE(structs.ok());
  EXPECT_NE(structs.value().get(), first.value().get());
  EXPECT_TRUE(structs.value()->add_node_attrs.empty());

  // Re-putting the id invalidates its cached decodes.
  ASSERT_TRUE(store.PutDelta(id, Delta(), &sizes).ok());
  auto after = store.GetDeltaShared(id, kCompAll, sizes);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value()->IsEmpty());
}

TEST(DeltaStoreCacheTest, CapacityZeroDisables) {
  auto kv = NewMemKVStore();
  DeltaStore store(kv.get());
  store.SetDecodedCacheCapacity(0);

  Snapshot g = MakeSample();
  Delta d = Delta::Between(g, Snapshot());
  ComponentSizes sizes;
  const DeltaId id = store.AllocateId();
  ASSERT_TRUE(store.PutDelta(id, d, &sizes).ok());
  auto first = store.GetDeltaShared(id, kCompAll, sizes);
  auto second = store.GetDeltaShared(id, kCompAll, sizes);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value().get(), second.value().get());
  EXPECT_EQ(store.decoded_cache_hits(), 0u);
}

}  // namespace
}  // namespace hgdb
