#include <gtest/gtest.h>

#include "auxiliary/path_index.h"
#include "workload/generators.h"
#include "workload/trace_world.h"

namespace hgdb {
namespace {

// --- AuxSnapshot / AuxDelta ----------------------------------------------------

TEST(AuxSnapshotTest, AddRemoveContains) {
  AuxSnapshot s;
  EXPECT_TRUE(s.Add("k", "v1"));
  EXPECT_FALSE(s.Add("k", "v1"));  // Duplicate.
  EXPECT_TRUE(s.Add("k", "v2"));
  EXPECT_TRUE(s.Contains("k", "v1"));
  EXPECT_EQ(s.PairCount(), 2u);
  EXPECT_TRUE(s.Remove("k", "v1"));
  EXPECT_FALSE(s.Remove("k", "v1"));
  EXPECT_FALSE(s.Contains("k", "v1"));
  EXPECT_TRUE(s.Remove("k", "v2"));
  EXPECT_TRUE(s.Empty());
}

TEST(AuxDeltaTest, BetweenAndApplyBothDirections) {
  AuxSnapshot a, b;
  a.Add("x", "1");
  a.Add("y", "2");
  b.Add("y", "2");
  b.Add("z", "3");
  AuxDelta d = AuxDelta::Between(b, a);
  AuxSnapshot g = a;
  ASSERT_TRUE(d.ApplyTo(&g, true).ok());
  EXPECT_TRUE(g.Equals(b));
  ASSERT_TRUE(d.ApplyTo(&g, false).ok());
  EXPECT_TRUE(g.Equals(a));
}

TEST(AuxDeltaTest, SerdeRoundTrip) {
  AuxDelta d;
  d.add = {{"a", "1"}, {"b", "2"}};
  d.del = {{"c", "3"}};
  std::string blob;
  d.EncodeTo(&blob);
  AuxDelta back;
  ASSERT_TRUE(AuxDelta::DecodeFrom(blob, &back).ok());
  EXPECT_EQ(back.add, d.add);
  EXPECT_EQ(back.del, d.del);
  std::string bad = blob + "x";
  EXPECT_FALSE(AuxDelta::DecodeFrom(bad, &back).ok());
}

TEST(AuxEventsTest, RangeApplicationAndInversion) {
  std::vector<AuxEvent> events = {
      {1, true, "k", "a"}, {3, true, "k", "b"}, {5, false, "k", "a"}};
  AuxSnapshot s;
  ASSERT_TRUE(ApplyAuxEvents(events, true, kMinTimestamp, 3, &s).ok());
  EXPECT_TRUE(s.Contains("k", "a"));
  EXPECT_TRUE(s.Contains("k", "b"));
  ASSERT_TRUE(ApplyAuxEvents(events, true, 3, kMaxTimestamp, &s).ok());
  EXPECT_FALSE(s.Contains("k", "a"));
  // Undo the tail.
  ASSERT_TRUE(ApplyAuxEvents(events, false, 3, kMaxTimestamp, &s).ok());
  EXPECT_TRUE(s.Contains("k", "a"));
}

TEST(AuxEventsTest, SerdeRoundTrip) {
  std::vector<AuxEvent> events = {{1, true, "k", "v"}, {-5, false, "a", ""}};
  std::string blob;
  EncodeAuxEvents(events, &blob);
  std::vector<AuxEvent> back;
  ASSERT_TRUE(DecodeAuxEvents(blob, &back).ok());
  EXPECT_EQ(back, events);
}

TEST(AuxIntersectTest, KeepsCommonPairsOnly) {
  AuxSnapshot a, b;
  a.Add("k", "1");
  a.Add("k", "2");
  b.Add("k", "2");
  b.Add("j", "9");
  AuxSnapshot p = AuxIntersect({&a, &b});
  EXPECT_EQ(p.PairCount(), 1u);
  EXPECT_TRUE(p.Contains("k", "2"));
}

// --- PathIndex over a DeltaGraph ------------------------------------------------

// Builds a labeled random trace: every node gets a label from a small
// alphabet at creation.
GeneratedTrace LabeledTrace(size_t num_events, uint64_t seed, int num_labels) {
  GeneratedTrace trace;
  trace.world = std::make_unique<TraceWorld>(seed);
  TraceWorld& w = *trace.world;
  Rng& rng = w.rng();
  Timestamp t = 1;
  auto add_labeled_node = [&]() {
    const NodeId n = w.AddNode(t, 0, &trace.events);
    const std::string label(1, static_cast<char>('a' + rng.Uniform(num_labels)));
    w.SetNodeAttr(t, n, "label", label, &trace.events);
  };
  for (int i = 0; i < 6; ++i) add_labeled_node();
  while (trace.events.size() < num_events) {
    t += 1;
    const double roll = rng.NextDouble();
    if (roll < 0.2) {
      add_labeled_node();
    } else if (roll < 0.75 || w.edge_count() == 0) {
      w.AddRandomEdge(t, false, &trace.events);
    } else {
      w.DeleteRandomEdge(t, &trace.events);
    }
  }
  return trace;
}

class PathIndexTest : public ::testing::Test {
 protected:
  void Build(size_t num_events, uint64_t seed, size_t leaf_size = 150) {
    trace_ = LabeledTrace(num_events, seed, 4);
    store_ = NewMemKVStore();
    index_ = std::make_unique<PathIndex>(store_.get());
    DeltaGraphOptions opts;
    opts.leaf_size = leaf_size;
    auto dg = DeltaGraph::Create(store_.get(), opts);
    ASSERT_TRUE(dg.ok());
    dg_ = std::move(dg).value();
    dg_->RegisterAuxHook(index_.get());
    ASSERT_TRUE(dg_->AppendAll(trace_.events).ok());
    ASSERT_TRUE(dg_->Finalize().ok());
  }

  GeneratedTrace trace_;
  std::unique_ptr<KVStore> store_;
  std::unique_ptr<PathIndex> index_;
  std::unique_ptr<DeltaGraph> dg_;
};

TEST_F(PathIndexTest, CurrentAuxMatchesBruteForce) {
  Build(1500, 7);
  Snapshot now = ReplayAt(trace_.events, trace_.events.back().time);
  AuxSnapshot expected = EnumerateAllLabelPaths(now, "label");
  EXPECT_TRUE(index_->current().Equals(expected))
      << "index: " << index_->current().PairCount()
      << " brute: " << expected.PairCount();
}

TEST_F(PathIndexTest, HistoricalAuxSnapshotsMatchBruteForce) {
  Build(1200, 13);
  const auto& skel = dg_->skeleton();
  // Probe a few leaf boundaries and mid-eventlist times.
  std::vector<Timestamp> probes;
  for (size_t i = 1; i < skel.leaves().size(); i += 2) {
    probes.push_back(skel.node(skel.leaves()[i]).boundary_time);
    probes.push_back(skel.node(skel.leaves()[i]).boundary_time - 1);
  }
  for (Timestamp t : probes) {
    auto state = dg_->GetAuxState(*index_, t);
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    const auto& aux = static_cast<const AuxSnapshotState&>(*state.value()).snapshot;
    Snapshot g = ReplayAt(trace_.events, t);
    AuxSnapshot expected = EnumerateAllLabelPaths(g, "label");
    EXPECT_TRUE(aux.Equals(expected))
        << "t=" << t << " aux=" << aux.PairCount()
        << " expected=" << expected.PairCount();
  }
}

TEST_F(PathIndexTest, PatternMatchesOverHistoryAgreeWithBruteForce) {
  Build(900, 21);
  // Pattern: a path a-b-a-c (labels), pure path pattern.
  PatternGraph pattern;
  pattern.labels = {"a", "b", "a", "c"};
  pattern.edges = {{0, 1}, {1, 2}, {2, 3}};

  std::set<PatternMatch> matches;
  auto count = FindMatchesOverHistory(dg_.get(), *index_, pattern, &matches);
  ASSERT_TRUE(count.ok()) << count.status().ToString();

  // Brute-force: at each leaf boundary, enumerate label paths and count the
  // ones matching the pattern's quartet in either orientation.
  size_t expected_total = 0;
  const auto& skel = dg_->skeleton();
  const std::string key_fwd = PathIndex::QuartetKey({"a", "b", "a", "c"});
  const std::string key_rev = PathIndex::QuartetKey({"c", "a", "b", "a"});
  for (int32_t leaf : skel.leaves()) {
    const Timestamp t = skel.node(leaf).boundary_time;
    Snapshot g = ReplayAt(trace_.events, t);
    AuxSnapshot paths = EnumerateAllLabelPaths(g, "label");
    std::set<std::string> distinct;
    if (const auto* vals = paths.Get(key_fwd)) {
      for (const auto& v : *vals) distinct.insert(v);
    }
    if (const auto* vals = paths.Get(key_rev)) {
      for (const auto& v : *vals) distinct.insert(v);
    }
    expected_total += distinct.size();
  }
  EXPECT_EQ(count.value(), expected_total);
}

TEST_F(PathIndexTest, PatternWithExtraEdgeVerifies) {
  Build(700, 33);
  // A 4-cycle: path a-b-a-c plus the closing edge (0,3).
  PatternGraph cycle;
  cycle.labels = {"a", "b", "a", "c"};
  cycle.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  PatternGraph path = cycle;
  path.edges.pop_back();

  std::set<PatternMatch> cycle_matches, path_matches;
  auto c1 = FindMatchesOverHistory(dg_.get(), *index_, cycle, &cycle_matches);
  auto c2 = FindMatchesOverHistory(dg_.get(), *index_, path, &path_matches);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  // Every cycle match is also a path match.
  EXPECT_LE(c1.value(), c2.value());
  for (const auto& m : cycle_matches) {
    EXPECT_TRUE(path_matches.contains(m));
  }
}

TEST_F(PathIndexTest, RejectsTooSmallPatterns) {
  Build(300, 41);
  PatternGraph small;
  small.labels = {"a", "b"};
  small.edges = {{0, 1}};
  auto result = FindMatchesOverHistory(dg_.get(), *index_, small, nullptr);
  EXPECT_TRUE(result.status().IsNotSupported());
}

}  // namespace
}  // namespace hgdb
