// Randomized replay-oracle harness: ~50 seeded random workloads (interleaved
// appends and finalizes, equal-time runs, attribute churn, deletes, random
// leaf sizes / arities / differential functions, optional materialized
// starts) are indexed into a DeltaGraph, and every retrieval path — serial
// visitor, parallel executor at 2 and 8 threads, each with prefetching on and
// off, across component subsets — is checked element-for-element against a
// NaiveReplayOracle that rebuilds each requested snapshot by replaying the
// full event log into plain std containers (tests/test_oracle.h). This is
// the safety net for the chunked-overlay COW stores: aliasing bugs between
// snapshots that share chunks show up here as concrete element diffs.
//
// Any failure prints the workload seed; HISTGRAPH_TEST_SEED=<seed> reruns
// exactly that workload (see tests/README.md).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "deltagraph/delta_graph.h"
#include "deltagraph/partitioned_delta_graph.h"
#include "exec/io_pool.h"
#include "exec/task_pool.h"
#include "kvstore/kv_store.h"
#include "tests/test_oracle.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace hgdb {
namespace {

struct OracleWorkload {
  std::unique_ptr<KVStore> store;
  std::unique_ptr<DeltaGraph> dg;
  std::vector<Event> log;  // Full append-order event log (the ground truth).
};

// Builds a randomized index: trace shape, index geometry, the differential
// function, the number of append/finalize rounds, materialization, and cache
// capacity all derive from the seed.
OracleWorkload BuildWorkload(test::SeededRng& rng) {
  RandomTraceOptions topts;
  topts.num_events = 400 + rng.Uniform(800);
  topts.seed = rng.seed() * 977 + 13;
  topts.p_same_time = 0.10 + rng.NextDouble() * 0.35;  // Equal-time runs.
  topts.p_del_edge = 0.06 + rng.NextDouble() * 0.14;   // Deletes.
  topts.p_del_node = rng.NextDouble() * 0.05;
  topts.p_node_attr = 0.10 + rng.NextDouble() * 0.20;  // Attribute churn.
  topts.p_edge_attr = 0.05 + rng.NextDouble() * 0.15;
  GeneratedTrace trace = GenerateRandomTrace(topts);

  OracleWorkload w;
  w.store = NewMemKVStore();
  DeltaGraphOptions opts;
  opts.leaf_size = 40 + rng.Uniform(120);
  opts.arity = 2 + static_cast<int>(rng.Uniform(3));
  const char* kFunctions[] = {"intersection", "union", "balanced"};
  opts.functions = {kFunctions[rng.Uniform(3)]};
  auto dg = DeltaGraph::Create(w.store.get(), opts);
  EXPECT_TRUE(dg.ok());
  w.dg = std::move(dg).value();

  // Interleave appends with 1..4 finalizes; a final partial segment is
  // sometimes left unfinalized so the recent-eventlist path is exercised.
  const size_t rounds = 1 + rng.Uniform(4);
  std::vector<size_t> cuts;
  for (size_t i = 0; i + 1 < rounds; ++i) {
    cuts.push_back(1 + rng.Uniform(trace.events.size() - 1));
  }
  cuts.push_back(trace.events.size());
  std::sort(cuts.begin(), cuts.end());
  size_t next = 0;
  for (size_t i = 0; i < cuts.size(); ++i) {
    for (; next < cuts[i]; ++next) {
      EXPECT_TRUE(w.dg->Append(trace.events[next]).ok())
          << trace.events[next].ToString();
    }
    const bool last_segment = i + 1 == cuts.size();
    if (!last_segment || rng.Chance(0.75)) {
      EXPECT_TRUE(w.dg->Finalize().ok());
    }
  }
  if (rng.Chance(0.4)) {
    EXPECT_TRUE(w.dg->MaterializeDepth(rng.Uniform(2) == 0 ? 0 : 1).ok());
  }
  if (rng.Chance(0.3)) w.dg->SetDecodedCacheCapacity(0);  // Real fetches only.
  w.log = std::move(trace.events);
  return w;
}

TEST(ReplayOracleTest, AllRetrievalPathsMatchNaiveReplay) {
  TaskPool pool2(2), pool8(8);
  IoPool io(2);
  TaskPool* const pools[] = {nullptr, &pool2, &pool8};
  IoPool* const ios[] = {nullptr, &io};
  const unsigned component_sets[] = {kCompAll, kCompStruct,
                                     kCompNodeAttr | kCompEdgeAttr};

  for (uint64_t seed : test::PropertySeeds(50, 5000)) {
    test::SeededRng rng(seed);
    SCOPED_TRACE(rng.Desc());
    OracleWorkload w = BuildWorkload(rng);

    // Query times: random over (and slightly beyond) the span, plus exact
    // event timestamps (boundary-equal retrievals), plus a duplicate.
    std::vector<Timestamp> times = test::RandomTimes(rng, w.log, 5);
    times.push_back(w.log[rng.Uniform(w.log.size())].time);
    times.push_back(w.log.back().time);

    for (unsigned components : component_sets) {
      // One oracle per distinct requested time.
      std::map<Timestamp, test::NaiveReplayOracle> oracles;
      for (Timestamp t : times) {
        if (oracles.count(t) == 0) {
          oracles.emplace(t, test::NaiveReplayOracle::At(w.log, t, components));
        }
      }

      for (TaskPool* pool : pools) {
        for (IoPool* iop : ios) {
          w.dg->SetTaskPool(pool);
          w.dg->SetIoPool(iop);
          SCOPED_TRACE("threads=" + std::to_string(pool ? pool->parallelism() : 1) +
                       " prefetch=" + std::to_string(iop != nullptr) +
                       " components=" + std::to_string(components));
          auto got = w.dg->GetSnapshots(times, components);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ASSERT_EQ(got.value().size(), times.size());
          for (size_t i = 0; i < times.size(); ++i) {
            EXPECT_TRUE(oracles.at(times[i]).Matches(got.value()[i]))
                << "t=" << times[i];
          }
        }
      }

      // Singlepoint retrieval (linear plan + SSSP plan cache) on the serial
      // configuration.
      w.dg->SetTaskPool(nullptr);
      w.dg->SetIoPool(nullptr);
      for (size_t i = 0; i < 2 && i < times.size(); ++i) {
        auto got = w.dg->GetSnapshot(times[i], components);
        ASSERT_TRUE(got.ok()) << got.status().ToString() << " singlepoint t="
                              << times[i] << " components=" << components;
        EXPECT_TRUE(oracles.at(times[i]).Matches(got.value()))
            << "singlepoint t=" << times[i] << " components=" << components;
      }
    }
  }
}

// The sharded index under the same harness: the identical randomized
// workloads are split across shard counts {1, 2, 4} by chunk-aligned hash
// routing, ingested in parallel, and every retrieval mode — serial and
// parallel shard execution, prefetch on and off — must be element-identical
// to the single-log naive replay. Partitioning must be invisible in the
// result.
TEST(ReplayOracleTest, PartitionedRetrievalMatchesNaiveReplay) {
  TaskPool pool(4);
  IoPool io(2);
  TaskPool* const pools[] = {nullptr, &pool};
  IoPool* const ios[] = {nullptr, &io};

  for (uint64_t seed : test::PropertySeeds(12, 6200)) {
    test::SeededRng rng(seed);
    SCOPED_TRACE(rng.Desc());

    RandomTraceOptions topts;
    topts.num_events = 400 + rng.Uniform(800);
    topts.seed = rng.seed() * 977 + 13;
    topts.p_same_time = 0.10 + rng.NextDouble() * 0.35;
    topts.p_del_edge = 0.06 + rng.NextDouble() * 0.14;
    topts.p_del_node = rng.NextDouble() * 0.05;
    topts.p_node_attr = 0.10 + rng.NextDouble() * 0.20;
    topts.p_edge_attr = 0.05 + rng.NextDouble() * 0.15;
    GeneratedTrace trace = GenerateRandomTrace(topts);

    std::vector<Timestamp> times = test::RandomTimes(rng, trace.events, 5);
    times.push_back(trace.events[rng.Uniform(trace.events.size())].time);
    std::map<Timestamp, test::NaiveReplayOracle> oracles;
    for (Timestamp t : times) {
      if (oracles.count(t) == 0) {
        oracles.emplace(t,
                        test::NaiveReplayOracle::At(trace.events, t, kCompAll));
      }
    }

    for (size_t shards : {1, 2, 4}) {
      std::vector<std::unique_ptr<KVStore>> stores;
      std::vector<KVStore*> ptrs;
      for (size_t i = 0; i < shards; ++i) {
        stores.push_back(NewMemKVStore());
        ptrs.push_back(stores.back().get());
      }
      DeltaGraphOptions opts;
      opts.leaf_size = 40 + rng.Uniform(120);
      opts.arity = 2 + static_cast<int>(rng.Uniform(3));
      const char* kFunctions[] = {"intersection", "union", "balanced"};
      opts.functions = {kFunctions[rng.Uniform(3)]};
      auto pdg = PartitionedDeltaGraph::Create(ptrs, opts);
      ASSERT_TRUE(pdg.ok());
      pdg.value()->SetTaskPool(&pool);  // Parallel per-shard ingest.
      ASSERT_TRUE(pdg.value()->AppendAll(trace.events).ok());
      if (rng.Chance(0.8)) {  // Sometimes answer from recent eventlists only.
        ASSERT_TRUE(pdg.value()->Finalize().ok());
      }
      if (rng.Chance(0.3)) pdg.value()->SetDecodedCacheCapacity(0);

      for (TaskPool* p : pools) {
        for (IoPool* iop : ios) {
          pdg.value()->SetTaskPool(p);
          pdg.value()->SetIoPool(iop);
          SCOPED_TRACE("shards=" + std::to_string(shards) +
                       " parallel=" + std::to_string(p != nullptr) +
                       " prefetch=" + std::to_string(iop != nullptr));
          auto got = pdg.value()->GetSnapshots(times);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ASSERT_EQ(got.value().size(), times.size());
          for (size_t i = 0; i < times.size(); ++i) {
            EXPECT_TRUE(oracles.at(times[i]).Matches(got.value()[i]))
                << "t=" << times[i];
          }
        }
      }
    }
  }
}

// A focused variant: append more events *after* the last finalize, at
// timestamps that collide with the final boundary (the PR 3 holdback fix),
// then check retrieval at exactly those times against the oracle.
TEST(ReplayOracleTest, PostFinalizeAppendsVisibleAtBoundaryTimes) {
  for (uint64_t seed : test::PropertySeeds(8, 9100)) {
    test::SeededRng rng(seed);
    SCOPED_TRACE(rng.Desc());

    RandomTraceOptions topts;
    topts.num_events = 300;
    topts.seed = seed * 31 + 5;
    topts.p_same_time = 0.45;
    GeneratedTrace trace = GenerateRandomTrace(topts);
    const size_t split = 200 + rng.Uniform(60);

    auto store = NewMemKVStore();
    DeltaGraphOptions opts;
    opts.leaf_size = 30 + rng.Uniform(40);
    auto dg = DeltaGraph::Create(store.get(), opts);
    ASSERT_TRUE(dg.ok());
    for (size_t i = 0; i < split; ++i) {
      ASSERT_TRUE(dg.value()->Append(trace.events[i]).ok());
    }
    ASSERT_TRUE(dg.value()->Finalize().ok());
    for (size_t i = split; i < trace.events.size(); ++i) {
      ASSERT_TRUE(dg.value()->Append(trace.events[i]).ok());
    }

    const Timestamp boundary = trace.events[split - 1].time;
    for (Timestamp t : {boundary, trace.events[split].time,
                        trace.events.back().time}) {
      auto oracle = test::NaiveReplayOracle::At(trace.events, t, kCompAll);
      auto got = dg.value()->GetSnapshot(t, kCompAll);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(oracle.Matches(got.value())) << "t=" << t;
    }
  }
}

}  // namespace
}  // namespace hgdb
